// Weighted undirected graph used for layout conflict graphs.
//
// Vertices are pattern ids; an edge (u, v, w) records that patterns u and v
// interact, with w = their edge-to-edge spacing in nm (Fig. 3(a) of the
// paper: closer patterns interact more strongly, so MST over these weights
// separates the nearest pairs first).
#pragma once

#include <vector>

namespace ldmo::graph {

/// One weighted undirected edge.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Adjacency-list weighted undirected graph with a fixed vertex count.
class Graph {
 public:
  explicit Graph(int vertex_count);

  /// Adds an undirected edge. Self-loops are rejected.
  void add_edge(int u, int v, double weight);

  int vertex_count() const { return vertex_count_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbor vertex ids of `v`.
  const std::vector<int>& neighbors(int v) const;

  /// Vertex degree.
  int degree(int v) const;

  /// Labels vertices by connected component; returns (labels, count).
  /// Labels are dense in [0, count) and assigned in BFS discovery order.
  std::pair<std::vector<int>, int> connected_components() const;

 private:
  int vertex_count_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace ldmo::graph
