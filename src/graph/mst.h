// Minimum spanning tree / forest (Kruskal).
//
// The paper solves MST per connected component of the separated-pattern (SP)
// conflict graph (Fig. 3(b)); tree edges identify the closest pattern pairs
// that must land on different masks, and the tree's 2-coloring gives the
// relative mask relationship of all SP patterns in a component.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ldmo::graph {

/// Result of minimum_spanning_forest().
struct MstResult {
  /// Selected tree edges (a forest when the graph is disconnected).
  std::vector<Edge> edges;
  /// Sum of selected edge weights.
  double total_weight = 0.0;
  /// Component label per vertex and component count (of the input graph).
  std::vector<int> component;
  int component_count = 0;
};

/// Kruskal's algorithm over all components of `g` (ties broken by input
/// order, deterministic).
MstResult minimum_spanning_forest(const Graph& g);

/// Two-colors a forest: vertices joined by a forest edge get opposite colors
/// (0/1). The lowest-indexed vertex of each tree gets color 0. Vertices with
/// no forest edge get color 0. Throws if `edges` contain a cycle of odd or
/// even length (i.e. are not a forest).
std::vector<int> two_color_forest(int vertex_count,
                                  const std::vector<Edge>& edges);

}  // namespace ldmo::graph
