#include "graph/disjoint_set.h"

#include <numeric>

#include "common/error.h"

namespace ldmo::graph {

DisjointSet::DisjointSet(int n)
    : parent_(static_cast<std::size_t>(n)),
      rank_(static_cast<std::size_t>(n), 0),
      set_count_(n) {
  require(n >= 0, "DisjointSet: negative size");
  std::iota(parent_.begin(), parent_.end(), 0);
}

int DisjointSet::find(int x) {
  require(x >= 0 && x < size(), "DisjointSet::find: out of range");
  int root = x;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(x)] != root) {
    const int next = parent_[static_cast<std::size_t>(x)];
    parent_[static_cast<std::size_t>(x)] = root;
    x = next;
  }
  return root;
}

bool DisjointSet::unite(int a, int b) {
  int ra = find(a);
  int rb = find(b);
  if (ra == rb) return false;
  if (rank_[static_cast<std::size_t>(ra)] < rank_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  if (rank_[static_cast<std::size_t>(ra)] ==
      rank_[static_cast<std::size_t>(rb)])
    ++rank_[static_cast<std::size_t>(ra)];
  --set_count_;
  return true;
}

bool DisjointSet::connected(int a, int b) { return find(a) == find(b); }

}  // namespace ldmo::graph
