// Two-coloring heuristics for conflict graphs.
//
// These back the *baseline* decomposers of Table I: flows [16]+[6] and
// [17]+[6] pick one decomposition up front from graph structure alone
// (no printability feedback), then hand it to mask optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ldmo::graph {

/// Result of a two-coloring attempt.
struct ColoringResult {
  /// Color (0/1) per vertex.
  std::vector<int> color;
  /// Number of conflict edges whose endpoints share a color.
  int conflict_count = 0;
  /// Sum of 1/weight over monochromatic edges — the "spacing badness" the
  /// SUALD-style baseline minimizes (closer same-mask pairs cost more).
  double spacing_penalty = 0.0;
};

/// Exact bipartite 2-coloring via BFS when the graph is bipartite; otherwise
/// colors greedily and reports the violated edges.
ColoringResult bipartite_or_greedy_coloring(const Graph& g);

/// Spacing-uniformity-aware coloring (SUALD-like, [16]): local search that
/// starts from bipartite_or_greedy_coloring and flips vertices while the
/// spacing penalty decreases. `max_passes` bounds the sweeps.
/// Vertices unconstrained by the graph (isolated, or in components where
/// both orientations are equivalent) are assigned from `tiebreak_seed`:
/// the modeled decomposers know nothing beyond their conflict graph, so
/// their choice among equivalent colorings is arbitrary, not clairvoyant.
ColoringResult spacing_uniformity_coloring(const Graph& g, int max_passes = 8,
                                           std::uint64_t tiebreak_seed = 16);

/// Balance-aware coloring (Yu-Pan-like, [17]): greedy BFS coloring that
/// breaks free choices toward equalizing per-mask vertex counts (random
/// among equally-balanced options, same rationale as above), then repairs
/// conflicts by flipping.
ColoringResult balanced_coloring(const Graph& g, int max_passes = 8,
                                 std::uint64_t tiebreak_seed = 17);

/// Recomputes conflict_count / spacing_penalty for an existing coloring.
ColoringResult evaluate_coloring(const Graph& g, std::vector<int> color);

/// Greedy k-coloring with local repair: vertices are colored in
/// decreasing-degree order with the least-conflicting color, then improved
/// by single-vertex recolor passes. Exact on trees/bipartite inputs for
/// k >= 2; heuristic otherwise. Conflict counting matches
/// evaluate_coloring (colors compared for equality).
ColoringResult greedy_k_coloring(const Graph& g, int k, int max_passes = 8);

}  // namespace ldmo::graph
