#include "graph/coloring.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "common/rng.h"

namespace ldmo::graph {
namespace {

// Penalty contribution of one monochromatic edge: closer pairs (smaller
// weight = spacing in nm) are worse. The +1 keeps touching patterns finite.
double edge_penalty(const Edge& e) { return 1.0 / (e.weight + 1.0); }

}  // namespace

ColoringResult evaluate_coloring(const Graph& g, std::vector<int> color) {
  require(static_cast<int>(color.size()) == g.vertex_count(),
          "evaluate_coloring: size mismatch");
  ColoringResult result;
  result.color = std::move(color);
  for (const Edge& e : g.edges()) {
    if (result.color[static_cast<std::size_t>(e.u)] ==
        result.color[static_cast<std::size_t>(e.v)]) {
      ++result.conflict_count;
      result.spacing_penalty += edge_penalty(e);
    }
  }
  return result;
}

ColoringResult bipartite_or_greedy_coloring(const Graph& g) {
  const int n = g.vertex_count();
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  for (int start = 0; start < n; ++start) {
    if (color[static_cast<std::size_t>(start)] != -1) continue;
    color[static_cast<std::size_t>(start)] = 0;
    std::queue<int> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      for (int nb : g.neighbors(v)) {
        if (color[static_cast<std::size_t>(nb)] == -1) {
          color[static_cast<std::size_t>(nb)] =
              1 - color[static_cast<std::size_t>(v)];
          frontier.push(nb);
        }
      }
    }
  }
  return evaluate_coloring(g, std::move(color));
}

namespace {

// One local-search sweep: flip any vertex whose flip strictly reduces
// (conflicts, penalty) lexicographically. Returns true if anything flipped.
// Vertices are visited in a seeded-random order: ids correlate with layout
// position, and a deterministic id-order sweep would resolve balance ties
// by spatially alternating masks — accidental proximity awareness the
// modeled decomposers do not have.
bool improve_by_flips(const Graph& g, std::vector<int>& color,
                      bool prefer_balance, Rng& rng) {
  bool changed = false;
  const int n = g.vertex_count();
  std::vector<int> mask_count = {0, 0};
  if (prefer_balance)
    for (int v = 0; v < n; ++v) ++mask_count[static_cast<std::size_t>(
        color[static_cast<std::size_t>(v)])];

  std::vector<int> visit_order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) visit_order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(visit_order);

  for (int v : visit_order) {
    int same = 0;
    int other = 0;
    double same_pen = 0.0;
    double other_pen = 0.0;
    for (const Edge& e : g.edges()) {
      int nb = -1;
      if (e.u == v) nb = e.v;
      else if (e.v == v) nb = e.u;
      else continue;
      if (color[static_cast<std::size_t>(nb)] ==
          color[static_cast<std::size_t>(v)]) {
        ++same;
        same_pen += edge_penalty(e);
      } else {
        ++other;
        other_pen += edge_penalty(e);
      }
    }
    bool flip = false;
    if (same > other || (same == other && same_pen > other_pen)) {
      flip = true;
    } else if (prefer_balance && same == other && same_pen == other_pen) {
      const int c = color[static_cast<std::size_t>(v)];
      if (mask_count[static_cast<std::size_t>(c)] >
          mask_count[static_cast<std::size_t>(1 - c)] + 1)
        flip = true;
    }
    if (flip) {
      const int c = color[static_cast<std::size_t>(v)];
      color[static_cast<std::size_t>(v)] = 1 - c;
      if (prefer_balance) {
        --mask_count[static_cast<std::size_t>(c)];
        ++mask_count[static_cast<std::size_t>(1 - c)];
      }
      changed = true;
    }
  }
  return changed;
}

}  // namespace

ColoringResult spacing_uniformity_coloring(const Graph& g, int max_passes,
                                           std::uint64_t tiebreak_seed) {
  ColoringResult best = bipartite_or_greedy_coloring(g);
  std::vector<int> color = best.color;
  Rng rng(tiebreak_seed);
  // Arbitrary (seeded) choice for vertices the conflict graph does not
  // constrain — isolated vertices get a coin flip, each connected
  // component's orientation is flipped with probability 1/2.
  {
    const auto [component, count] = g.connected_components();
    std::vector<int> flip(static_cast<std::size_t>(count));
    for (int& f : flip) f = rng.bernoulli(0.5) ? 1 : 0;
    for (int v = 0; v < g.vertex_count(); ++v)
      color[static_cast<std::size_t>(v)] ^=
          flip[static_cast<std::size_t>(component[static_cast<std::size_t>(v)])];
    best = evaluate_coloring(g, color);
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    if (!improve_by_flips(g, color, /*prefer_balance=*/false, rng)) break;
  }
  ColoringResult refined = evaluate_coloring(g, std::move(color));
  if (refined.conflict_count < best.conflict_count ||
      (refined.conflict_count == best.conflict_count &&
       refined.spacing_penalty < best.spacing_penalty))
    return refined;
  return best;
}

ColoringResult balanced_coloring(const Graph& g, int max_passes,
                                 std::uint64_t tiebreak_seed) {
  const int n = g.vertex_count();
  Rng rng(tiebreak_seed);
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<int> mask_count = {0, 0};
  // Greedy BFS coloring; isolated/first vertices go to the lighter mask,
  // with equal counts broken randomly (the decomposer has no other signal).
  for (int start = 0; start < n; ++start) {
    if (color[static_cast<std::size_t>(start)] != -1) continue;
    color[static_cast<std::size_t>(start)] =
        mask_count[0] != mask_count[1]
            ? (mask_count[0] < mask_count[1] ? 0 : 1)
            : (rng.bernoulli(0.5) ? 1 : 0);
    ++mask_count[static_cast<std::size_t>(
        color[static_cast<std::size_t>(start)])];
    std::queue<int> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      for (int nb : g.neighbors(v)) {
        if (color[static_cast<std::size_t>(nb)] != -1) continue;
        color[static_cast<std::size_t>(nb)] =
            1 - color[static_cast<std::size_t>(v)];
        ++mask_count[static_cast<std::size_t>(
            color[static_cast<std::size_t>(nb)])];
        frontier.push(nb);
      }
    }
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    if (!improve_by_flips(g, color, /*prefer_balance=*/true, rng)) break;
  }
  return evaluate_coloring(g, std::move(color));
}

ColoringResult greedy_k_coloring(const Graph& g, int k, int max_passes) {
  require(k >= 1, "greedy_k_coloring: k must be >= 1");
  const int n = g.vertex_count();
  std::vector<int> color(static_cast<std::size_t>(n), 0);

  // Decreasing-degree vertex order (stable for determinism).
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return g.degree(a) > g.degree(b); });

  // Cost of giving vertex v color c under the current partial coloring:
  // (conflicts, spacing penalty) over already-colored neighbors.
  std::vector<bool> colored(static_cast<std::size_t>(n), false);
  auto color_cost = [&](int v, int c) {
    int conflicts = 0;
    double penalty = 0.0;
    for (const Edge& e : g.edges()) {
      int nb = -1;
      if (e.u == v) nb = e.v;
      else if (e.v == v) nb = e.u;
      else continue;
      if (!colored[static_cast<std::size_t>(nb)]) continue;
      if (color[static_cast<std::size_t>(nb)] == c) {
        ++conflicts;
        penalty += 1.0 / (e.weight + 1.0);
      }
    }
    return std::pair<int, double>{conflicts, penalty};
  };

  for (int v : order) {
    int best_color = 0;
    std::pair<int, double> best_cost{1 << 30, 0.0};
    for (int c = 0; c < k; ++c) {
      const auto cost = color_cost(v, c);
      if (cost < best_cost) {
        best_cost = cost;
        best_color = c;
      }
    }
    color[static_cast<std::size_t>(v)] = best_color;
    colored[static_cast<std::size_t>(v)] = true;
  }

  // Local repair: recolor any vertex whose best alternative strictly
  // improves (conflicts, penalty).
  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (int v = 0; v < n; ++v) {
      const int current = color[static_cast<std::size_t>(v)];
      auto best_cost = color_cost(v, current);
      int best_color = current;
      for (int c = 0; c < k; ++c) {
        if (c == current) continue;
        const auto cost = color_cost(v, c);
        if (cost < best_cost) {
          best_cost = cost;
          best_color = c;
        }
      }
      if (best_color != current) {
        color[static_cast<std::size_t>(v)] = best_color;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return evaluate_coloring(g, std::move(color));
}

}  // namespace ldmo::graph
