// Cooperative cancellation: a CancellationSource owns a shared flag, the
// CancellationTokens it hands out observe it. Long-running work (ILT
// iteration loops, speculative candidate exploration, serve requests) polls
// token.cancelled() at natural checkpoints and winds down early.
//
// Tokens are value types and cheap to copy; a default-constructed token is
// never cancelled, so APIs can take one by value with `= {}` and skip the
// checks for callers that don't care.
//
// Two composable extensions serve the serving layer's deadline propagation:
//
//  * Linked sources: CancellationSource(parent_token) creates a source
//    whose tokens fire when EITHER the new source cancels or the parent
//    token reports cancelled. The speculative ILT flow links its per-attempt
//    sources to the request token, so a request deadline stops every
//    attempt mid-iteration while attempt-vs-attempt cancellation still
//    works independently.
//  * Deadlines: token.with_deadline(t) / with_timeout(s) return a copy that
//    additionally reports cancelled once the steady clock passes t. The
//    poll cost is one clock read, paid only by tokens that carry a
//    deadline — plain tokens stay two branch-predictable null checks.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace ldmo::runtime {

/// Observer half: polls a shared flag (plus optional parent chain and
/// deadline). Default-constructed tokens can never be cancelled.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// True once the owning source called cancel(), the deadline passed, or
  /// any token up the parent chain reports cancelled.
  bool cancelled() const {
    if (flag_ && flag_->load(std::memory_order_acquire)) return true;
    if (deadline_ != Clock::time_point::max() && Clock::now() >= deadline_)
      return true;
    return parent_ && parent_->cancelled();
  }

  /// Copy of this token that additionally cancels at `deadline`. Combining
  /// keeps the earlier of the two deadlines.
  CancellationToken with_deadline(Clock::time_point deadline) const {
    CancellationToken t = *this;
    if (deadline < t.deadline_) t.deadline_ = deadline;
    return t;
  }

  /// Copy that cancels `seconds` from now.
  CancellationToken with_timeout(double seconds) const {
    return with_deadline(Clock::now() +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds)));
  }

  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  Clock::time_point deadline() const { return deadline_; }

 private:
  friend class CancellationSource;
  CancellationToken(std::shared_ptr<const std::atomic<bool>> flag,
                    std::shared_ptr<const CancellationToken> parent)
      : flag_(std::move(flag)), parent_(std::move(parent)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::shared_ptr<const CancellationToken> parent_;
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Owner half: cancel() is one-way and idempotent. Copies of a source share
/// the same flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Linked source: its tokens also observe `parent` (flag, chain and
  /// deadline), while cancel() on this source leaves the parent untouched.
  explicit CancellationSource(CancellationToken parent)
      : flag_(std::make_shared<std::atomic<bool>>(false)),
        parent_(std::make_shared<const CancellationToken>(std::move(parent))) {
  }

  void cancel() { flag_->store(true, std::memory_order_release); }

  /// True when this source cancelled or its linked parent reports
  /// cancelled — matches what this source's tokens observe.
  bool cancelled() const {
    return flag_->load(std::memory_order_acquire) ||
           (parent_ && parent_->cancelled());
  }

  CancellationToken token() const { return CancellationToken(flag_, parent_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::shared_ptr<const CancellationToken> parent_;
};

}  // namespace ldmo::runtime
