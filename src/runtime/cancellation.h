// Cooperative cancellation: a CancellationSource owns a shared flag, the
// CancellationTokens it hands out observe it. Long-running work (ILT
// iteration loops, speculative candidate exploration) polls
// token.cancelled() at natural checkpoints and winds down early.
//
// Tokens are value types and cheap to copy; a default-constructed token is
// never cancelled, so APIs can take one by value with `= {}` and skip the
// checks for callers that don't care.
#pragma once

#include <atomic>
#include <memory>

namespace ldmo::runtime {

/// Observer half: polls a shared flag. Default-constructed tokens can
/// never be cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning source called cancel().
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner half: cancel() is one-way and idempotent. Copies of a source share
/// the same flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ldmo::runtime
