// Unbounded multi-producer / multi-consumer task queue.
//
// The engine intentionally uses a mutex + condition-variable queue rather
// than a lock-free ring: tasks here are coarse (an ILT attempt, a GEMM row
// block, a SIFT extraction), so enqueue/dequeue cost is noise next to task
// bodies, and the blocking pop gives idle workers a real sleep instead of a
// spin. Queue depth is surfaced through the "runtime.queue_depth" gauge.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace ldmo::runtime {

/// FIFO of type-erased tasks, safe for any number of producers and
/// consumers. close() wakes all blocked consumers; a closed queue still
/// drains its remaining tasks.
class TaskQueue {
 public:
  using Task = std::function<void()>;

  /// Enqueues a task and wakes one consumer. No-op (task dropped) after
  /// close() — producers racing shutdown lose quietly by design.
  void push(Task task);

  /// Blocks until a task is available or the queue is closed and drained.
  /// Returns false only in the latter case.
  bool pop(Task& out);

  /// Non-blocking pop; false when currently empty.
  bool try_pop(Task& out);

  /// Marks the queue closed and wakes every blocked consumer.
  void close();

  std::size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

}  // namespace ldmo::runtime
