#include "runtime/workspace.h"

#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace ldmo::runtime {
namespace {

// Keeps every thread's workspace alive (and its counters readable) after
// the thread exits; entries are never removed.
struct WorkspaceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Workspace>> all;
};

WorkspaceRegistry& ws_registry() {
  static WorkspaceRegistry* r = new WorkspaceRegistry();  // leaked on exit
  return *r;
}

}  // namespace

namespace detail {

void note_checkout(bool hit) {
  static obs::Counter& hits = obs::counter("workspace.hits");
  static obs::Counter& misses = obs::counter("workspace.misses");
  (hit ? hits : misses).inc();
}

}  // namespace detail

Workspace& Workspace::this_thread() {
  thread_local std::shared_ptr<Workspace> ws = [] {
    auto w = std::make_shared<Workspace>();
    WorkspaceRegistry& r = ws_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.all.push_back(w);
    return w;
  }();
  return *ws;
}

WorkspaceStats workspace_stats() {
  WorkspaceStats total;
  WorkspaceRegistry& r = ws_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::shared_ptr<Workspace>& w : r.all) {
    const WorkspaceStats s = w->stats();
    total.grid_f += s.grid_f;
    total.grid_c += s.grid_c;
    total.vec_f32 += s.vec_f32;
    total.vec_f64 += s.vec_f64;
    total.vec_c128 += s.vec_c128;
  }
  return total;
}

void publish_workspace_metrics() {
  const WorkspaceStats s = workspace_stats();
  const PoolStats total = s.total();
  obs::gauge("workspace.pooled_bytes")
      .set(static_cast<double>(total.pooled_bytes));
  obs::gauge("workspace.pooled_buffers").set(static_cast<double>(total.pooled));
  obs::gauge("workspace.outstanding")
      .set(static_cast<double>(total.outstanding));
  obs::gauge("workspace.grid_f.pooled_bytes")
      .set(static_cast<double>(s.grid_f.pooled_bytes));
  obs::gauge("workspace.grid_c.pooled_bytes")
      .set(static_cast<double>(s.grid_c.pooled_bytes));
  obs::gauge("workspace.vec_f32.pooled_bytes")
      .set(static_cast<double>(s.vec_f32.pooled_bytes));
  obs::gauge("workspace.vec_f64.pooled_bytes")
      .set(static_cast<double>(s.vec_f64.pooled_bytes));
  obs::gauge("workspace.vec_c128.pooled_bytes")
      .set(static_cast<double>(s.vec_c128.pooled_bytes));
  {
    WorkspaceRegistry& r = ws_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    obs::gauge("workspace.threads").set(static_cast<double>(r.all.size()));
  }
}

}  // namespace ldmo::runtime
