// Chunked parallel loops with a determinism contract.
//
// The chunk plan depends only on the problem size — never on the thread
// count — and chunk results are always combined in chunk-index order, so a
// run with --threads N is bit-identical to --threads 1 as long as the body
// itself is order-independent (writes disjoint slots, or reduces through
// deterministic_reduce). Every parallel call site in the codebase follows
// one of those two patterns.
//
// parallel_for is also nesting-safe: bodies may call parallel_for again
// (conv inside a flow inside a bench); inner loops run serially when the
// calling thread is already a pool worker or parallelism is off, keeping
// task granularity at the outermost profitable level.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/thread_pool.h"

namespace ldmo::runtime {

/// Contiguous [begin, end) chunks of [0, n). Depends only on `n`,
/// `min_chunk` and `max_chunks` — NOT on the thread count (the determinism
/// contract above).
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t chunk_count = 0;

  std::size_t begin(std::size_t chunk) const { return chunk * chunk_size; }
  std::size_t end(std::size_t chunk) const {
    const std::size_t e = (chunk + 1) * chunk_size;
    return e < n ? e : n;
  }
};

/// Plans [0, n) into at most `max_chunks` chunks of at least `min_chunk`
/// indices each.
ChunkPlan plan_chunks(std::size_t n, std::size_t min_chunk = 1,
                      std::size_t max_chunks = 64);

namespace detail {
bool run_serially(const ChunkPlan& plan);
void run_chunks(const ChunkPlan& plan,
                const std::function<void(std::size_t, std::size_t)>& body);
}  // namespace detail

/// Runs body(begin, end) over the planned chunks of [0, n). Bodies must
/// not assume any execution order; writes must target disjoint data.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t min_chunk, Body&& body) {
  const ChunkPlan plan = plan_chunks(n, min_chunk);
  if (plan.chunk_count == 0) return;
  if (detail::run_serially(plan)) {
    for (std::size_t c = 0; c < plan.chunk_count; ++c)
      body(plan.begin(c), plan.end(c));
    return;
  }
  detail::run_chunks(plan, std::function<void(std::size_t, std::size_t)>(
                               std::forward<Body>(body)));
}

/// Runs body(i) for every i in [0, n), chunked.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  parallel_for_chunks(n, 1, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Deterministic map-reduce: map(i) -> T for every i, folded strictly in
/// index order via combine(acc, value). The maps run in parallel; the fold
/// is serial and ordered, so floating-point results are independent of the
/// thread count.
template <typename T, typename Map, typename Combine>
T deterministic_reduce(std::size_t n, T init, Map&& map, Combine&& combine) {
  std::vector<T> slots(n, init);
  parallel_for(n, [&](std::size_t i) { slots[i] = map(i); });
  T acc = init;
  for (std::size_t i = 0; i < n; ++i) acc = combine(acc, slots[i]);
  return acc;
}

}  // namespace ldmo::runtime
