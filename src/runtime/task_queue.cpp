#include "runtime/task_queue.h"

#include <utility>

namespace ldmo::runtime {

void TaskQueue::push(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskQueue::pop(Task& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

bool TaskQueue::try_pop(Task& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

void TaskQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

bool TaskQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace ldmo::runtime
