// Fixed-size thread pool and task-group joining — the execution engine
// behind candidate scoring, speculative ILT exploration and the
// parallel_for kernels.
//
// Design rules the rest of the codebase relies on:
//
//  * Determinism is the caller's contract, scheduling is ours: the pool
//    makes no ordering promises, so parallel call sites either write to
//    disjoint, pre-sized slots or reduce partial results in a fixed order
//    after joining. parallel_for.h packages both patterns.
//  * Waiting threads participate. TaskGroup::wait() claims and runs the
//    group's still-unstarted tasks on the calling thread, so a pool with
//    zero workers (--threads 1) degenerates to plain serial execution and
//    nested parallelism (a GEMM inside an ILT attempt inside a flow) can
//    never deadlock on pool starvation.
//  * Tasks never leak exceptions into workers: the first exception a group
//    sees is captured and rethrown from wait() on the submitting thread.
//  * Observability is built in: "runtime.threads" / "runtime.queue_depth"
//    gauges, "runtime.tasks_executed" / "runtime.tasks_inline" counters,
//    per-worker busy-seconds gauges, and span trees created inside tasks
//    are captured and re-attached under the submitter's live span in
//    deterministic submission order (see obs::SpanCapture).
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "obs/span.h"
#include "runtime/task_queue.h"

namespace ldmo::runtime {

/// Fixed set of workers draining one shared MPMC queue. `workers` may be 0:
/// the pool then executes nothing itself and TaskGroup::wait() runs
/// everything inline on the submitting thread.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Raw fire-and-track enqueue; most callers want TaskGroup or submit().
  void enqueue(std::function<void()> task);

  /// Future-returning submission for one-off asynchronous work. Do NOT
  /// block on the returned future from inside a pool task (a blocked
  /// worker cannot help drain the queue); use TaskGroup there instead.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// True on a thread owned by any ThreadPool.
  static bool on_worker_thread();

  /// Point-in-time busy seconds per worker (index-aligned with workers).
  std::vector<double> worker_busy_seconds() const;

  std::size_t queue_depth() const { return queue_.size(); }

 private:
  friend class TaskGroup;
  void worker_loop(int worker_index);

  TaskQueue queue_;
  std::vector<std::thread> threads_;
  /// Owned per-worker busy-time accumulators (atomic: read by snapshots).
  std::unique_ptr<std::atomic<double>[]> busy_seconds_;
};

/// A batch of tasks joined as a unit. run() may be called from any thread
/// (multi-producer); wait() blocks until every task finished, executing
/// unclaimed tasks itself, then rethrows the first captured exception.
///
/// Span trees produced inside the tasks are captured per task and either
/// returned via take_spans() or, by wait()'s default, adopted under the
/// calling thread's live span in submission order.
class TaskGroup {
 public:
  /// Binds to `pool`, or to the process-global pool when null.
  explicit TaskGroup(ThreadPool* pool = nullptr);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);

  /// Joins all tasks. `adopt_spans`: graft captured task spans under the
  /// caller's live span (deterministic submission order) — pass false to
  /// collect them via take_spans() instead.
  void wait(bool adopt_spans = true);

  /// Captured span roots of finished tasks, submission-ordered. Valid
  /// after wait(false); empties the internal store.
  std::vector<obs::SpanNode> take_spans();

 private:
  struct Entry;
  struct State;
  static void execute(const std::shared_ptr<State>& state, Entry& entry);

  std::shared_ptr<State> state_;
  ThreadPool& pool_;
};

/// Threads the machine exposes (>= 1).
int hardware_threads();

/// Sets the process-wide parallelism budget: 1 = serial, N = caller plus
/// N-1 pool workers. Tears down and rebuilds the global pool, so call it
/// from a quiescent point (startup, between runs, tests). Values < 1 clamp
/// to 1.
void set_thread_count(int threads);

/// Current parallelism budget (defaults to hardware_threads()).
int thread_count();

/// True when thread_count() > 1 — call sites use this to skip task setup
/// entirely on serial runs.
bool parallel_enabled();

/// The process-global pool (created on first use with thread_count() - 1
/// workers). Prefer TaskGroup / parallel_for over touching this directly.
ThreadPool& global_pool();

/// Publishes pool gauges ("runtime.threads", per-worker busy seconds) to
/// the metrics registry; run reports call registry().snapshot() so this is
/// invoked by report writers and at pool teardown.
void publish_metrics();

/// Parses "--threads N" (or "--threads=N") out of argv, applies it via
/// set_thread_count(), and compacts argv so downstream flag parsers (and
/// google-benchmark's Initialize) never see it. Returns the thread count in
/// effect afterwards — the hardware default when the flag is absent.
/// Shared by ldmo_cli and every bench binary.
int apply_threads_flag(int& argc, char** argv);

}  // namespace ldmo::runtime
