#include "runtime/thread_pool.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace ldmo::runtime {
namespace {

thread_local bool t_on_pool_worker = false;

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("runtime.queue_depth");
  return g;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  require(workers >= 0, "ThreadPool: negative worker count");
  busy_seconds_ = std::make_unique<std::atomic<double>[]>(
      static_cast<std::size_t>(workers > 0 ? workers : 1));
  for (int i = 0; i < workers; ++i)
    busy_seconds_[static_cast<std::size_t>(i)].store(
        0.0, std::memory_order_relaxed);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  queue_.push(std::move(task));
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
}

bool ThreadPool::on_worker_thread() { return t_on_pool_worker; }

std::vector<double> ThreadPool::worker_busy_seconds() const {
  std::vector<double> out(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i)
    out[i] = busy_seconds_[i].load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::worker_loop(int worker_index) {
  t_on_pool_worker = true;
  static obs::Counter& executed = obs::counter("runtime.tasks_executed");
  TaskQueue::Task task;
  while (queue_.pop(task)) {
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
    const double start = now_seconds();
    task();
    task = nullptr;  // release captures before blocking again
    busy_seconds_[static_cast<std::size_t>(worker_index)].fetch_add(
        now_seconds() - start, std::memory_order_relaxed);
    executed.inc();
  }
}

// ---------------------------------------------------------------------------
// TaskGroup

struct TaskGroup::Entry {
  std::function<void()> fn;
  std::atomic<bool> claimed{false};
  std::vector<obs::SpanNode> spans;  ///< written by the executing thread
};

struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t unfinished = 0;
  std::exception_ptr first_error;
  /// Submission-ordered. Entries are heap-stable; the vector itself is
  /// guarded by mu (run() may race wait()'s scans).
  std::vector<std::shared_ptr<Entry>> entries;
  /// Spans gathered by wait(false), submission-ordered.
  std::vector<obs::SpanNode> collected_spans;
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : state_(std::make_shared<State>()),
      pool_(pool ? *pool : global_pool()) {}

TaskGroup::~TaskGroup() {
  // Joining in the destructor keeps abandoned groups from leaving tasks
  // referencing dead stack frames; normal call sites wait() explicitly.
  try {
    wait(false);
  } catch (...) {
    // Exceptions already surfaced via a prior wait() or are unreachable by
    // the caller here; swallowing is the only option in a destructor.
  }
}

void TaskGroup::execute(const std::shared_ptr<State>& state, Entry& entry) {
  if (entry.claimed.exchange(true, std::memory_order_acq_rel))
    return;  // another thread got it first
  try {
    if (obs::tracing_enabled()) {
      obs::SpanCapture capture;
      entry.fn();
      entry.spans = std::move(capture.roots);
    } else {
      entry.fn();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->first_error) state->first_error = std::current_exception();
  }
  entry.fn = nullptr;
  bool all_done;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    all_done = --state->unfinished == 0;
  }
  if (all_done) state->cv.notify_all();
}

void TaskGroup::run(std::function<void()> fn) {
  auto entry = std::make_shared<Entry>();
  entry->fn = std::move(fn);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->entries.push_back(entry);
    ++state_->unfinished;
  }
  state_->cv.notify_all();  // a blocked wait() can claim it
  // With no workers every task runs inline during wait(); skipping the
  // enqueue keeps a serial process from accumulating dead queue thunks.
  if (pool_.worker_count() > 0) {
    std::shared_ptr<State> state = state_;
    pool_.enqueue([state, entry] { execute(state, *entry); });
  }
}

void TaskGroup::wait(bool adopt_spans) {
  static obs::Counter& inline_counter = obs::counter("runtime.tasks_inline");
  // Participate: claim and run unstarted tasks on this thread. This is what
  // makes --threads 1 plain serial execution and nested groups
  // deadlock-free — the waiter never depends on a worker existing.
  std::size_t scan = 0;
  std::unique_lock<std::mutex> lock(state_->mu);
  while (state_->unfinished > 0) {
    std::shared_ptr<Entry> claimable;
    while (scan < state_->entries.size()) {
      std::shared_ptr<Entry>& candidate = state_->entries[scan];
      ++scan;
      if (!candidate->claimed.load(std::memory_order_acquire)) {
        claimable = candidate;
        break;
      }
    }
    if (claimable) {
      lock.unlock();
      execute(state_, *claimable);
      inline_counter.inc();
      lock.lock();
      continue;
    }
    // Everything is claimed: tasks are in flight on workers. Sleep until
    // the count drains (or a concurrent producer adds a new entry).
    state_->cv.wait(lock, [&] {
      return state_->unfinished == 0 || scan < state_->entries.size();
    });
  }

  // Gather spans and reset the group for reuse.
  for (const std::shared_ptr<Entry>& entry : state_->entries)
    for (obs::SpanNode& node : entry->spans)
      state_->collected_spans.push_back(std::move(node));
  state_->entries.clear();
  std::exception_ptr error = state_->first_error;
  state_->first_error = nullptr;
  std::vector<obs::SpanNode> spans;
  if (adopt_spans) spans = std::move(state_->collected_spans);
  state_->collected_spans.clear();
  lock.unlock();

  if (adopt_spans) obs::adopt_spans(std::move(spans));
  if (error) std::rethrow_exception(error);
}

std::vector<obs::SpanNode> TaskGroup::take_spans() {
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->collected_spans);
}

// ---------------------------------------------------------------------------
// Global pool configuration

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<int> g_thread_count{0};  // 0 = unset, falls back to hardware

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int thread_count() {
  const int configured = g_thread_count.load(std::memory_order_relaxed);
  return configured > 0 ? configured : hardware_threads();
}

bool parallel_enabled() { return thread_count() > 1; }

void set_thread_count(int threads) {
  if (threads < 1) threads = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool.reset();  // joins workers; callers reconfigure at quiescent points
  g_thread_count.store(threads, std::memory_order_relaxed);
  obs::gauge("runtime.threads").set(threads);
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(thread_count() - 1);
    obs::gauge("runtime.threads").set(thread_count());
  }
  return *g_pool;
}

int apply_threads_flag(int& argc, char** argv) {
  int write = 1;
  for (int read = 1; read < argc; ++read) {
    const std::string arg = argv[read];
    if (arg == "--threads") {
      require(read + 1 < argc, "--threads requires a value");
      set_thread_count(std::atoi(argv[read + 1]));
      ++read;  // consume the value too
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      set_thread_count(std::atoi(arg.c_str() + 10));
      continue;
    }
    argv[write++] = argv[read];
  }
  argc = write;
  argv[argc] = nullptr;
  return thread_count();
}

void publish_metrics() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  obs::gauge("runtime.threads").set(thread_count());
  if (!g_pool) return;
  const std::vector<double> busy = g_pool->worker_busy_seconds();
  for (std::size_t i = 0; i < busy.size(); ++i)
    obs::gauge("runtime.worker." + std::to_string(i) + ".busy_seconds")
        .set(busy[i]);
  obs::gauge("runtime.queue_depth")
      .set(static_cast<double>(g_pool->queue_depth()));
}

}  // namespace ldmo::runtime
