// Thread-aware scratch-buffer pools: the memory engine behind the
// zero-allocation steady state of the litho/ILT/NN hot paths.
//
// Every thread owns one Workspace (reached via Workspace::this_thread());
// checkout returns an RAII handle whose destructor puts the buffer back on
// the owning thread's free list, so the second time a path runs on a
// thread, every checkout is a pool hit and the heap is never touched.
//
// Rules the rest of the codebase relies on (DESIGN.md §9):
//
//  * Bit-identity of recycled buffers: the zeroed checkouts (grid_f,
//    vec_f64, ...) hand back contents identical to a freshly constructed
//    Grid/vector; the *_uninit variants carry stale data and every call
//    site using them must fully overwrite before any read. This is what
//    keeps pooled runs bit-identical to allocation-per-call runs and the
//    DeterminismTest contract intact.
//  * Thread affinity: acquire and release happen on the owning thread.
//    Inside a fork-join region (parallel_for / TaskGroup) worker threads
//    may read/write the checked-out buffer — the join provides the
//    happens-before edge — but workers draw their own scratch from their
//    own Workspace::this_thread().
//  * Stats are atomics: cross-thread aggregation (workspace_stats(),
//    publish_workspace_metrics()) only reads the relaxed counters, never
//    the free lists.
#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "common/grid.h"

namespace ldmo::runtime {

class Workspace;

/// Point-in-time counters of one pool (or a sum over pools/threads).
struct PoolStats {
  long long hits = 0;          ///< checkouts served from a free list
  long long misses = 0;        ///< checkouts that had to allocate
  long long outstanding = 0;   ///< checked out, not yet returned
  long long pooled = 0;        ///< buffers parked in free lists
  std::size_t pooled_bytes = 0;  ///< bytes held by free lists

  PoolStats& operator+=(const PoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    outstanding += o.outstanding;
    pooled += o.pooled;
    pooled_bytes += o.pooled_bytes;
    return *this;
  }
};

namespace detail {

/// Bumps the process-wide "workspace.hits"/"workspace.misses" counters.
void note_checkout(bool hit);

/// Shape-keyed free lists of Grid<T>. Mutation is owner-thread-only; the
/// stat fields are relaxed atomics readable from any thread.
template <typename T>
class GridPool {
 public:
  /// Pops a same-shape grid (zeroing it when `zero`) or allocates fresh.
  Grid<T> acquire(int height, int width, bool zero) {
    const auto it = free_.find({height, width});
    if (it != free_.end() && !it->second.empty()) {
      Grid<T> g = std::move(it->second.back());
      it->second.pop_back();
      pooled_bytes_.fetch_sub(g.size() * sizeof(T),
                              std::memory_order_relaxed);
      pooled_.fetch_sub(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      note_checkout(true);
      if (zero) g.fill(T{});
      return g;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    note_checkout(false);
    return Grid<T>(height, width);  // value-initialized == zeroed
  }

  void release(Grid<T>&& g) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    // Reject grids whose storage was moved out from under the handle —
    // pooling one would poison the shape key.
    const std::size_t expect = static_cast<std::size_t>(g.height()) *
                               static_cast<std::size_t>(g.width());
    if (expect == 0 || g.size() != expect) return;
    std::vector<Grid<T>>& list = free_[{g.height(), g.width()}];
    if (list.size() >= kMaxPerShape) return;  // bounded: drop to the heap
    pooled_bytes_.fetch_add(g.size() * sizeof(T), std::memory_order_relaxed);
    pooled_.fetch_add(1, std::memory_order_relaxed);
    list.push_back(std::move(g));
  }

  PoolStats stats() const {
    PoolStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.outstanding = outstanding_.load(std::memory_order_relaxed);
    s.pooled = pooled_.load(std::memory_order_relaxed);
    s.pooled_bytes = static_cast<std::size_t>(
        pooled_bytes_.load(std::memory_order_relaxed));
    return s;
  }

  /// Drops every parked buffer (owner thread only).
  void clear() {
    free_.clear();
    pooled_.store(0, std::memory_order_relaxed);
    pooled_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMaxPerShape = 64;

  std::map<std::pair<int, int>, std::vector<Grid<T>>> free_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> outstanding_{0};
  std::atomic<long long> pooled_{0};
  std::atomic<long long> pooled_bytes_{0};
};

/// Free list of raw std::vector<T> scratch, best-fit by capacity. A
/// checkout counts as a hit only when the recycled capacity already covers
/// the request (no hidden reallocation).
template <typename T>
class VectorPool {
 public:
  std::vector<T> acquire(std::size_t n, bool zero) {
    if (!free_.empty()) {
      // Best fit: smallest parked capacity that covers n; else the largest
      // (it grows once and then serves future requests of this size).
      std::size_t best = free_.size();
      std::size_t largest = 0;
      for (std::size_t i = 0; i < free_.size(); ++i) {
        const std::size_t cap = free_[i].capacity();
        if (cap >= n && (best == free_.size() ||
                         cap < free_[best].capacity()))
          best = i;
        if (free_[i].capacity() >= free_[largest].capacity()) largest = i;
      }
      const std::size_t pick = best != free_.size() ? best : largest;
      std::vector<T> v = std::move(free_[pick]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
      pooled_bytes_.fetch_sub(v.capacity() * sizeof(T),
                              std::memory_order_relaxed);
      pooled_.fetch_sub(1, std::memory_order_relaxed);
      const bool hit = v.capacity() >= n;
      (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      note_checkout(hit);
      if (zero) v.clear();     // size 0, capacity kept
      v.resize(n);             // value-initializes all (zero) or the tail
      return v;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    note_checkout(false);
    return std::vector<T>(n);
  }

  void release(std::vector<T>&& v) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    if (v.capacity() == 0 || free_.size() >= kMaxVectors) return;
    pooled_bytes_.fetch_add(v.capacity() * sizeof(T),
                            std::memory_order_relaxed);
    pooled_.fetch_add(1, std::memory_order_relaxed);
    free_.push_back(std::move(v));
  }

  PoolStats stats() const {
    PoolStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.outstanding = outstanding_.load(std::memory_order_relaxed);
    s.pooled = pooled_.load(std::memory_order_relaxed);
    s.pooled_bytes = static_cast<std::size_t>(
        pooled_bytes_.load(std::memory_order_relaxed));
    return s;
  }

  void clear() {
    free_.clear();
    pooled_.store(0, std::memory_order_relaxed);
    pooled_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMaxVectors = 64;

  std::vector<std::vector<T>> free_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> outstanding_{0};
  std::atomic<long long> pooled_{0};
  std::atomic<long long> pooled_bytes_{0};
};

}  // namespace detail

/// RAII grid checkout: destructor (or reset()) returns the grid to its
/// pool. Destroy on the thread that checked it out.
template <typename T>
class PooledGrid {
 public:
  PooledGrid() = default;
  PooledGrid(PooledGrid&& o) noexcept
      : pool_(o.pool_), grid_(std::move(o.grid_)) {
    o.pool_ = nullptr;
  }
  PooledGrid& operator=(PooledGrid&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      grid_ = std::move(o.grid_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledGrid(const PooledGrid&) = delete;
  PooledGrid& operator=(const PooledGrid&) = delete;
  ~PooledGrid() { reset(); }

  Grid<T>& operator*() { return grid_; }
  const Grid<T>& operator*() const { return grid_; }
  Grid<T>* operator->() { return &grid_; }
  const Grid<T>* operator->() const { return &grid_; }
  Grid<T>& get() { return grid_; }
  const Grid<T>& get() const { return grid_; }

  void reset() {
    if (pool_ == nullptr) return;
    pool_->release(std::move(grid_));
    pool_ = nullptr;
    grid_ = Grid<T>();
  }

 private:
  friend class Workspace;
  PooledGrid(detail::GridPool<T>* pool, Grid<T>&& grid)
      : pool_(pool), grid_(std::move(grid)) {}

  detail::GridPool<T>* pool_ = nullptr;
  Grid<T> grid_;
};

/// RAII vector checkout; same lifecycle rules as PooledGrid.
template <typename T>
class PooledVector {
 public:
  PooledVector() = default;
  PooledVector(PooledVector&& o) noexcept
      : pool_(o.pool_), vec_(std::move(o.vec_)) {
    o.pool_ = nullptr;
  }
  PooledVector& operator=(PooledVector&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      vec_ = std::move(o.vec_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledVector(const PooledVector&) = delete;
  PooledVector& operator=(const PooledVector&) = delete;
  ~PooledVector() { reset(); }

  std::vector<T>& operator*() { return vec_; }
  std::vector<T>* operator->() { return &vec_; }
  std::vector<T>& vec() { return vec_; }
  const std::vector<T>& vec() const { return vec_; }
  T* data() { return vec_.data(); }
  const T* data() const { return vec_.data(); }
  std::size_t size() const { return vec_.size(); }

  void reset() {
    if (pool_ == nullptr) return;
    pool_->release(std::move(vec_));
    pool_ = nullptr;
    vec_.clear();
  }

 private:
  friend class Workspace;
  PooledVector(detail::VectorPool<T>* pool, std::vector<T>&& vec)
      : pool_(pool), vec_(std::move(vec)) {}

  detail::VectorPool<T>* pool_ = nullptr;
  std::vector<T> vec_;
};

/// Per-pool stats of one workspace (or aggregated across threads).
struct WorkspaceStats {
  PoolStats grid_f;   ///< Grid<double>
  PoolStats grid_c;   ///< Grid<complex<double>>
  PoolStats vec_f32;  ///< vector<float>
  PoolStats vec_f64;  ///< vector<double>
  PoolStats vec_c128; ///< vector<complex<double>>

  PoolStats total() const {
    PoolStats t;
    t += grid_f;
    t += grid_c;
    t += vec_f32;
    t += vec_f64;
    t += vec_c128;
    return t;
  }
};

/// One thread's buffer pools. Checkout/return on the owning thread only;
/// see the file comment for the full contract.
class Workspace {
 public:
  using Complex = std::complex<double>;

  /// Zeroed checkouts: contents bit-identical to a fresh Grid/vector.
  PooledGrid<double> grid_f(int height, int width) {
    return {&grid_f_, grid_f_.acquire(height, width, /*zero=*/true)};
  }
  PooledGrid<Complex> grid_c(int height, int width) {
    return {&grid_c_, grid_c_.acquire(height, width, /*zero=*/true)};
  }
  PooledVector<float> vec_f32(std::size_t n) {
    return {&vec_f32_, vec_f32_.acquire(n, /*zero=*/true)};
  }
  PooledVector<double> vec_f64(std::size_t n) {
    return {&vec_f64_, vec_f64_.acquire(n, /*zero=*/true)};
  }
  PooledVector<Complex> vec_c128(std::size_t n) {
    return {&vec_c128_, vec_c128_.acquire(n, /*zero=*/true)};
  }

  /// Uninitialized checkouts: stale contents — the caller MUST fully
  /// overwrite before any read (the bit-identity rule depends on it).
  PooledGrid<double> grid_f_uninit(int height, int width) {
    return {&grid_f_, grid_f_.acquire(height, width, /*zero=*/false)};
  }
  PooledGrid<Complex> grid_c_uninit(int height, int width) {
    return {&grid_c_, grid_c_.acquire(height, width, /*zero=*/false)};
  }
  PooledVector<float> vec_f32_uninit(std::size_t n) {
    return {&vec_f32_, vec_f32_.acquire(n, /*zero=*/false)};
  }
  PooledVector<double> vec_f64_uninit(std::size_t n) {
    return {&vec_f64_, vec_f64_.acquire(n, /*zero=*/false)};
  }
  PooledVector<Complex> vec_c128_uninit(std::size_t n) {
    return {&vec_c128_, vec_c128_.acquire(n, /*zero=*/false)};
  }

  WorkspaceStats stats() const {
    WorkspaceStats s;
    s.grid_f = grid_f_.stats();
    s.grid_c = grid_c_.stats();
    s.vec_f32 = vec_f32_.stats();
    s.vec_f64 = vec_f64_.stats();
    s.vec_c128 = vec_c128_.stats();
    return s;
  }

  /// Drops every parked buffer (owner thread only); counters survive.
  void clear() {
    grid_f_.clear();
    grid_c_.clear();
    vec_f32_.clear();
    vec_f64_.clear();
    vec_c128_.clear();
  }

  /// The calling thread's workspace. Created on first use and kept alive
  /// (for stats aggregation) past thread exit.
  static Workspace& this_thread();

 private:
  detail::GridPool<double> grid_f_;
  detail::GridPool<Complex> grid_c_;
  detail::VectorPool<float> vec_f32_;
  detail::VectorPool<double> vec_f64_;
  detail::VectorPool<Complex> vec_c128_;
};

/// Per-pool stats aggregated over every workspace any thread ever created.
WorkspaceStats workspace_stats();

/// Writes the aggregate to the obs registry: "workspace.pooled_bytes",
/// "workspace.outstanding", "workspace.threads" and per-pool
/// "workspace.<pool>.pooled_bytes" gauges ("workspace.hits"/".misses"
/// counters are maintained live on every checkout).
void publish_workspace_metrics();

}  // namespace ldmo::runtime
