#include "runtime/parallel_for.h"

#include "common/error.h"

namespace ldmo::runtime {

ChunkPlan plan_chunks(std::size_t n, std::size_t min_chunk,
                      std::size_t max_chunks) {
  require(min_chunk >= 1 && max_chunks >= 1, "plan_chunks: bad parameters");
  ChunkPlan plan;
  plan.n = n;
  if (n == 0) return plan;
  std::size_t chunk = (n + max_chunks - 1) / max_chunks;  // ceil(n / max)
  if (chunk < min_chunk) chunk = min_chunk;
  plan.chunk_size = chunk;
  plan.chunk_count = (n + chunk - 1) / chunk;
  return plan;
}

namespace detail {

bool run_serially(const ChunkPlan& plan) {
  // Single chunk: nothing to distribute. Worker thread: an enclosing
  // parallel region already owns the distribution — nesting tasks would
  // only add queue churn (correctness is unaffected either way).
  return plan.chunk_count <= 1 || !parallel_enabled() ||
         ThreadPool::on_worker_thread();
}

void run_chunks(const ChunkPlan& plan,
                const std::function<void(std::size_t, std::size_t)>& body) {
  TaskGroup group;
  for (std::size_t c = 0; c < plan.chunk_count; ++c) {
    const std::size_t begin = plan.begin(c);
    const std::size_t end = plan.end(c);
    group.run([&body, begin, end] { body(begin, end); });
  }
  group.wait();
}

}  // namespace detail

}  // namespace ldmo::runtime
