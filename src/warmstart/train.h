// Training loop for MaskNet on a harvested corpus.
//
// The loss is computed on the *mask*, not the raw P field: the predicted
// field Y becomes a continuous mask m = sigmoid(theta_m * Y) — exactly the
// Eq. 1 parameterization ILT applies to its P fields — and the loss is
// MSE(m, m*) against the flow's optimized binary mask. Training through
// the same sigmoid the consumer applies means the network output lands
// directly in P-field units, so seeding ILT is a plain copy.
#pragma once

#include <functional>
#include <vector>

#include "nn/optimizer.h"
#include "warmstart/corpus.h"
#include "warmstart/masknet.h"

namespace ldmo::warmstart {

struct WarmTrainConfig {
  int epochs = 12;
  int batch_size = 4;
  nn::AdamConfig adam;
  double lr_decay_per_epoch = 1.0;
  /// Mask sigmoid slope used in the loss; match IltConfig::theta_m.
  double theta_m = 8.0;
  std::uint64_t shuffle_seed = 77;
};

struct WarmEpochStats {
  int epoch = 0;
  double mean_loss = 0.0;  ///< mean per-pixel squared mask error
  double learning_rate = 0.0;  ///< rate the epoch actually trained at
};

/// Trains `net` on every record of `corpus`; returns per-epoch stats.
/// `on_epoch` (optional) is invoked after each epoch.
std::vector<WarmEpochStats> train_masknet(
    MaskNet& net, const Corpus& corpus, const WarmTrainConfig& config = {},
    const std::function<void(const WarmEpochStats&)>& on_epoch = nullptr);

/// Mean per-pixel squared mask error of the net over a corpus (eval mode,
/// no gradient) — the training loss as a held-out metric.
double evaluate_masknet(MaskNet& net, const Corpus& corpus,
                        double theta_m = 8.0);

/// Mean per-pixel squared mask error of the paper's cold init (+/-
/// initial_p from the decomposition raster) against the optimized masks —
/// the baseline a useful warm start must beat.
double cold_init_loss(const Corpus& corpus, double theta_m = 8.0,
                      double initial_p = 0.25);

}  // namespace ldmo::warmstart
