// MaskWarmStart: the core::MaskInitializer implementation backed by a
// MaskNet. Owns the model, serializes concurrent predictions (the layer
// forward passes cache activations), and fingerprints the weights so the
// serve config fingerprint — and with it every cached result key —
// retires when the model is retrained or hot-swapped.
#pragma once

#include <mutex>
#include <string>

#include "core/mask_init.h"
#include "warmstart/masknet.h"

namespace ldmo::warmstart {

class MaskWarmStart : public core::MaskInitializer {
 public:
  explicit MaskWarmStart(MaskNetConfig config = {});

  /// Loads weights via nn::load_parameters (strict layout validation) and
  /// refreshes the version fingerprint.
  void load(const std::string& path);

  /// Saves weights via nn::save_parameters (tmp-then-rename).
  void save(const std::string& path) const;

  /// Recomputes the weight fingerprint. Call after training in place.
  void refresh_version();

  /// Borrow the model for training. NOT safe while another thread calls
  /// seed(); train, then refresh_version(), before sharing.
  MaskNet& net() { return net_; }

  std::string name() const override { return "masknet"; }
  std::uint64_t version() const override { return version_; }
  int grid_size() const override { return net_.config().grid_size; }

  /// Rasterizes (target, decomposition) planes, runs the net in eval mode
  /// and writes the two predicted P fields. Thread-safe (internally
  /// serialized). Fires the `warmstart.predict` failpoint.
  void seed(const layout::Layout& layout,
            const layout::Assignment& assignment, GridF& p1,
            GridF& p2) const override;

 private:
  std::uint64_t compute_version() const;  ///< caller holds mutex_

  mutable std::mutex mutex_;  ///< guards net_ activation caches
  mutable MaskNet net_;
  std::uint64_t version_ = 0;
};

}  // namespace ldmo::warmstart
