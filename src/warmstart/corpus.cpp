#include "warmstart/corpus.h"

#include <cstring>
#include <fstream>

#include "common/error.h"
#include "common/hash.h"

namespace ldmo::warmstart {
namespace {

constexpr char kMagic[8] = {'L', 'D', 'M', 'O', 'W', 'S', 'C', '1'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;

std::size_t plane_bytes(int grid_size) {
  return static_cast<std::size_t>(grid_size) * grid_size * sizeof(float);
}

std::size_t record_bytes(int grid_size) {
  return 5 * plane_bytes(grid_size) + sizeof(std::uint64_t);
}

std::uint64_t record_checksum(const ClipRecord& record, int grid_size) {
  common::Fnv1a h;
  const std::size_t bytes = plane_bytes(grid_size);
  h.bytes(record.target.data(), bytes);
  h.bytes(record.raster1.data(), bytes);
  h.bytes(record.raster2.data(), bytes);
  h.bytes(record.mask1.data(), bytes);
  h.bytes(record.mask2.data(), bytes);
  return h.digest();
}

void write_u32_le(std::ostream& out, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 4);
}

void write_u64_le(std::ostream& out, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t read_u32_le(std::istream& in) {
  unsigned char b[4] = {};
  in.read(reinterpret_cast<char*>(b), 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_le(std::istream& in) {
  unsigned char b[8] = {};
  in.read(reinterpret_cast<char*>(b), 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

/// Opens `path` for validated reading, returning the grid size. `size_out`
/// receives the total file size in bytes.
int open_validated(const std::string& path, std::ifstream& in,
                   std::size_t& size_out) {
  in.open(path, std::ios::binary | std::ios::ate);
  require(in.good(), "warmstart corpus: cannot open " + path);
  size_out = static_cast<std::size_t>(in.tellg());
  require(size_out >= kHeaderBytes,
          "warmstart corpus: file shorter than header: " + path);
  in.seekg(0);
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  require(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
          "warmstart corpus: bad magic in " + path);
  const std::uint32_t grid = read_u32_le(in);
  require(in.good() && grid >= 8 && grid <= 4096,
          "warmstart corpus: implausible grid size in " + path);
  const std::size_t payload = size_out - kHeaderBytes;
  require(payload % record_bytes(static_cast<int>(grid)) == 0,
          "warmstart corpus: size is not a whole number of records "
          "(truncated or torn append): " +
              path);
  return static_cast<int>(grid);
}

}  // namespace

CorpusWriter::CorpusWriter(std::string path, int grid_size)
    : path_(std::move(path)), grid_size_(grid_size) {
  require(grid_size_ >= 8 && grid_size_ <= 4096,
          "CorpusWriter: implausible grid size");
  std::ifstream existing(path_, std::ios::binary);
  if (existing.good() && existing.peek() != std::ifstream::traits_type::eof()) {
    existing.close();
    std::ifstream check;
    std::size_t size = 0;
    const int file_grid = open_validated(path_, check, size);
    require(file_grid == grid_size_,
            "CorpusWriter: existing corpus " + path_ + " has grid " +
                std::to_string(file_grid) + ", expected " +
                std::to_string(grid_size_));
    return;  // header already present, appends go to the end
  }
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  require(out.good(), "CorpusWriter: cannot create " + path_);
  out.write(kMagic, sizeof(kMagic));
  write_u32_le(out, static_cast<std::uint32_t>(grid_size_));
  out.flush();
  require(out.good(), "CorpusWriter: header write failed for " + path_);
}

void CorpusWriter::append(const ClipRecord& record) {
  const std::size_t n =
      static_cast<std::size_t>(grid_size_) * static_cast<std::size_t>(grid_size_);
  require(record.target.size() == n && record.raster1.size() == n &&
              record.raster2.size() == n && record.mask1.size() == n &&
              record.mask2.size() == n,
          "CorpusWriter::append: plane size does not match grid");
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  require(out.good(), "CorpusWriter: cannot append to " + path_);
  const std::size_t bytes = plane_bytes(grid_size_);
  out.write(reinterpret_cast<const char*>(record.target.data()),
            static_cast<std::streamsize>(bytes));
  out.write(reinterpret_cast<const char*>(record.raster1.data()),
            static_cast<std::streamsize>(bytes));
  out.write(reinterpret_cast<const char*>(record.raster2.data()),
            static_cast<std::streamsize>(bytes));
  out.write(reinterpret_cast<const char*>(record.mask1.data()),
            static_cast<std::streamsize>(bytes));
  out.write(reinterpret_cast<const char*>(record.mask2.data()),
            static_cast<std::streamsize>(bytes));
  write_u64_le(out, record_checksum(record, grid_size_));
  out.flush();
  require(out.good(), "CorpusWriter: append failed for " + path_);
  ++appended_;
}

Corpus read_corpus(const std::string& path) {
  std::ifstream in;
  std::size_t size = 0;
  Corpus corpus;
  corpus.grid_size = open_validated(path, in, size);
  const std::size_t count =
      (size - kHeaderBytes) / record_bytes(corpus.grid_size);
  const std::size_t n = static_cast<std::size_t>(corpus.grid_size) *
                        static_cast<std::size_t>(corpus.grid_size);
  corpus.records.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    ClipRecord record;
    const auto read_plane = [&](std::vector<float>& plane) {
      plane.resize(n);
      in.read(reinterpret_cast<char*>(plane.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
    };
    read_plane(record.target);
    read_plane(record.raster1);
    read_plane(record.raster2);
    read_plane(record.mask1);
    read_plane(record.mask2);
    const std::uint64_t stored = read_u64_le(in);
    require(in.good(), "warmstart corpus: short read in " + path);
    require(stored == record_checksum(record, corpus.grid_size),
            "warmstart corpus: checksum mismatch in record " +
                std::to_string(r) + " of " + path);
    corpus.records.push_back(std::move(record));
  }
  return corpus;
}

std::size_t corpus_record_count(const std::string& path) {
  std::ifstream in;
  std::size_t size = 0;
  const int grid = open_validated(path, in, size);
  return (size - kHeaderBytes) / record_bytes(grid);
}

}  // namespace ldmo::warmstart
