#include "warmstart/harvest.h"

#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "layout/raster.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "warmstart/corpus.h"

namespace ldmo::warmstart {
namespace {

std::vector<float> to_plane(const GridF& grid) {
  std::vector<float> plane(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    plane[i] = static_cast<float>(grid[i]);
  return plane;
}

}  // namespace

HarvestStats harvest_corpus(core::FlowEngine& engine,
                            const HarvestConfig& config,
                            const std::string& corpus_path) {
  require(config.clip_count >= 1, "harvest_corpus: need >= 1 clip");
  require(!engine.config().flow.warm_start.enabled,
          "harvest_corpus: harvest with the cold flow — training labels "
          "must come from the paper-faithful path, not a prior model");

  static obs::Counter& harvested_counter =
      obs::counter("warmstart.harvested_clips");
  static obs::Counter& failure_counter =
      obs::counter("warmstart.harvest_failures");

  obs::Span span("warmstart.harvest");
  span.attr("clips", config.clip_count);
  span.attr("sampling", config.use_sampling ? 1.0 : 0.0);

  const layout::LayoutGenerator generator(config.generator);
  std::vector<layout::Layout> layouts;
  if (config.use_sampling) {
    // Generate a wider pool and keep the SIFT/k-medoids selection so the
    // corpus covers the layout space's shape, not just consecutive seeds.
    require(config.oversample >= 1, "harvest_corpus: bad oversample");
    const std::vector<layout::Layout> pool = generator.generate_corpus(
        config.clip_count * config.oversample, config.seed0);
    sampling::LayoutSamplingConfig sampling_config = config.sampling;
    const sampling::LayoutSamplingResult sampled =
        sampling::sample_layouts(pool, sampling_config);
    for (const int idx : sampled.selected) {
      layouts.push_back(pool[static_cast<std::size_t>(idx)]);
      if (static_cast<int>(layouts.size()) >= config.clip_count) break;
    }
    // Top up from the pool when the clustering selected fewer than asked.
    for (std::size_t i = 0;
         i < pool.size() &&
         static_cast<int>(layouts.size()) < config.clip_count;
         ++i) {
      bool taken = false;
      for (const int idx : sampled.selected)
        if (static_cast<std::size_t>(idx) == i) { taken = true; break; }
      if (!taken) layouts.push_back(pool[i]);
    }
  } else {
    layouts = generator.generate_corpus(config.clip_count, config.seed0);
  }

  const int n = engine.simulator().grid_size();
  CorpusWriter writer(corpus_path, n);
  HarvestStats stats;
  for (const layout::Layout& layout : layouts) {
    ++stats.attempted;
    core::LdmoResult result = engine.run(layout);
    if (result.failed || result.cancelled) {
      ++stats.failed;
      failure_counter.inc();
      log_warn("warmstart harvest: flow run for ", layout.name,
               " did not produce masks, skipping");
      continue;
    }
    ClipRecord record;
    record.target = to_plane(layout::rasterize_target(layout, n));
    record.raster1 =
        to_plane(layout::rasterize_mask(layout, result.chosen, 0, n));
    record.raster2 =
        to_plane(layout::rasterize_mask(layout, result.chosen, 1, n));
    record.mask1 = to_plane(result.ilt.mask1);
    record.mask2 = to_plane(result.ilt.mask2);
    writer.append(record);
    ++stats.harvested;
    harvested_counter.inc();
  }
  span.attr("harvested", stats.harvested);
  span.attr("failed", stats.failed);
  return stats;
}

}  // namespace ldmo::warmstart
