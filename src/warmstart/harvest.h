// Dataset harvester: replays the existing LDMO flow over generated clips
// and records (target, decomposition, optimized-mask) training triples.
//
// The flow already produces exactly the supervision MaskNet needs — for
// every successful run, the chosen decomposition's rasters pair with the
// ILT-optimized binary masks. Harvesting is therefore a loop over
// generator seeds through a FlowEngine session, appending each successful
// run to the corpus; optional SIFT/k-medoids sampling (the paper's
// Section IV-A machinery) diversifies which generated clips are spent on
// flow runs.
#pragma once

#include <cstdint>
#include <string>

#include "core/flow_engine.h"
#include "layout/generator.h"
#include "sampling/layout_sampling.h"

namespace ldmo::warmstart {

struct HarvestConfig {
  layout::GeneratorConfig generator;
  int clip_count = 32;        ///< flow runs to attempt
  std::uint64_t seed0 = 900;  ///< first generator seed
  /// Diversify: generate `clip_count * oversample` clips, then keep the
  /// SIFT/k-medoids selection instead of the first clip_count seeds.
  bool use_sampling = false;
  int oversample = 4;
  sampling::LayoutSamplingConfig sampling;
};

struct HarvestStats {
  int attempted = 0;
  int harvested = 0;  ///< records appended to the corpus
  int failed = 0;     ///< flow runs that failed/cancelled (skipped)
};

/// Runs `config.clip_count` layouts through `engine` and appends each
/// successful (target, rasters, optimized masks) triple to the corpus at
/// `corpus_path` (created if absent; grid must match the engine).
HarvestStats harvest_corpus(core::FlowEngine& engine,
                            const HarvestConfig& config,
                            const std::string& corpus_path);

}  // namespace ldmo::warmstart
