#include "warmstart/train.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldmo::warmstart {
namespace {

/// Stacks records[order[first..last)] into a [B, 3, S, S] input batch and
/// a [B, 2, S, S] optimized-mask label batch.
std::pair<nn::Tensor, nn::Tensor> make_batch(
    const Corpus& corpus, const std::vector<std::size_t>& order,
    std::size_t first, std::size_t last) {
  const int batch = static_cast<int>(last - first);
  const int n = corpus.grid_size;
  const std::size_t plane = static_cast<std::size_t>(n) * n;
  nn::Tensor inputs({batch, 3, n, n});
  nn::Tensor labels({batch, 2, n, n});
  for (int b = 0; b < batch; ++b) {
    const ClipRecord& r =
        corpus.records[order[first + static_cast<std::size_t>(b)]];
    float* in = inputs.data() + static_cast<std::size_t>(b) * 3 * plane;
    std::copy(r.target.begin(), r.target.end(), in);
    std::copy(r.raster1.begin(), r.raster1.end(), in + plane);
    std::copy(r.raster2.begin(), r.raster2.end(), in + 2 * plane);
    float* lab = labels.data() + static_cast<std::size_t>(b) * 2 * plane;
    std::copy(r.mask1.begin(), r.mask1.end(), lab);
    std::copy(r.mask2.begin(), r.mask2.end(), lab + plane);
  }
  return {std::move(inputs), std::move(labels)};
}

/// Loss through the mask sigmoid: m = sigmoid(theta * y),
/// L = mean((m - m*)^2); grad[i] = dL/dy_i. Returns L.
double mask_loss_grad(const nn::Tensor& y, const nn::Tensor& labels,
                      double theta, nn::Tensor& grad) {
  grad = nn::Tensor(y.shape());
  const double inv_n = 1.0 / static_cast<double>(y.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double m = 1.0 / (1.0 + std::exp(-theta * y[i]));
    const double diff = m - labels[i];
    loss += diff * diff;
    grad[i] = static_cast<float>(2.0 * inv_n * diff * theta * m * (1.0 - m));
  }
  return loss * inv_n;
}

}  // namespace

std::vector<WarmEpochStats> train_masknet(
    MaskNet& net, const Corpus& corpus, const WarmTrainConfig& config,
    const std::function<void(const WarmEpochStats&)>& on_epoch) {
  require(!corpus.records.empty(), "train_masknet: empty corpus");
  require(corpus.grid_size == net.config().grid_size,
          "train_masknet: corpus grid does not match the network");
  require(config.epochs >= 1 && config.batch_size >= 1 &&
              config.theta_m > 0.0,
          "train_masknet: bad trainer config");

  static obs::Counter& epoch_counter = obs::counter("warmstart.train.epochs");
  static obs::Counter& batch_counter = obs::counter("warmstart.train.batches");
  static obs::Counter& example_counter =
      obs::counter("warmstart.train.examples");

  obs::Span span("warmstart.train");
  span.attr("examples", static_cast<double>(corpus.records.size()));
  span.attr("epochs", config.epochs);
  span.attr("batch_size", config.batch_size);

  nn::Adam optimizer(net.parameters(), config.adam);
  Rng rng(config.shuffle_seed);

  std::vector<std::size_t> order(corpus.records.size());
  std::iota(order.begin(), order.end(), 0);

  // Same decay discipline as nn::train_regressor: schedule from a base-rate
  // snapshot, never compounding mutation of the shared config.
  const double base_lr = optimizer.config().learning_rate;
  double lr = base_lr;

  std::vector<WarmEpochStats> history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.config().learning_rate = lr;
    rng.shuffle(order);
    double loss_sum = 0.0;
    int batches = 0;
    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t last = std::min(
          order.size(), first + static_cast<std::size_t>(config.batch_size));
      auto [inputs, labels] = make_batch(corpus, order, first, last);
      optimizer.zero_grad();
      const nn::Tensor y = net.forward(inputs, /*training=*/true);
      nn::Tensor grad;
      loss_sum += mask_loss_grad(y, labels, config.theta_m, grad);
      net.backward(grad);
      optimizer.step();
      ++batches;
    }
    WarmEpochStats stats{epoch + 1, loss_sum / std::max(1, batches), lr};
    history.push_back(stats);
    epoch_counter.inc();
    batch_counter.inc(batches);
    example_counter.inc(static_cast<long long>(order.size()));
    span.row("epochs", {{"epoch", static_cast<double>(stats.epoch)},
                        {"mean_loss", stats.mean_loss},
                        {"learning_rate", stats.learning_rate}});
    if (on_epoch) on_epoch(stats);
    lr *= config.lr_decay_per_epoch;
  }
  optimizer.config().learning_rate = base_lr;
  span.attr("final_loss", history.empty() ? 0.0 : history.back().mean_loss);
  return history;
}

double evaluate_masknet(MaskNet& net, const Corpus& corpus, double theta_m) {
  require(!corpus.records.empty(), "evaluate_masknet: empty corpus");
  std::vector<std::size_t> order(corpus.records.size());
  std::iota(order.begin(), order.end(), 0);
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto [inputs, labels] = make_batch(corpus, order, i, i + 1);
    const nn::Tensor y = net.forward(inputs, /*training=*/false);
    nn::Tensor grad;
    loss_sum += mask_loss_grad(y, labels, theta_m, grad);
  }
  return loss_sum / static_cast<double>(order.size());
}

double cold_init_loss(const Corpus& corpus, double theta_m,
                      double initial_p) {
  require(!corpus.records.empty(), "cold_init_loss: empty corpus");
  double loss_sum = 0.0;
  for (const ClipRecord& r : corpus.records) {
    double loss = 0.0;
    const std::size_t n = r.mask1.size();
    for (std::size_t i = 0; i < n; ++i) {
      // The paper's init: p = initial_p * (2 r - 1), mask = sigmoid(theta p).
      const double p1 = initial_p * (2.0 * r.raster1[i] - 1.0);
      const double p2 = initial_p * (2.0 * r.raster2[i] - 1.0);
      const double m1 = 1.0 / (1.0 + std::exp(-theta_m * p1));
      const double m2 = 1.0 / (1.0 + std::exp(-theta_m * p2));
      const double d1 = m1 - r.mask1[i];
      const double d2 = m2 - r.mask2[i];
      loss += d1 * d1 + d2 * d2;
    }
    loss_sum += loss / static_cast<double>(2 * n);
  }
  return loss_sum / static_cast<double>(corpus.records.size());
}

}  // namespace ldmo::warmstart
