#include "warmstart/masknet.h"

#include "common/error.h"
#include "common/rng.h"

namespace ldmo::warmstart {
namespace {

Rng seeded_rng(std::uint64_t seed) { return Rng(seed); }

}  // namespace

MaskNet::MaskNet(MaskNetConfig config)
    : config_(config),
      enc1_([&] {
        require(config_.grid_size >= 8 && config_.grid_size % 4 == 0,
                "MaskNet: grid_size must be >= 8 and divisible by 4");
        require(config_.base_width >= 2, "MaskNet: base_width too small");
        Rng rng = seeded_rng(config_.seed);
        return nn::Conv2d(3, config_.base_width, 3, 1, 1, true, rng);
      }()),
      down1_([&] {
        Rng rng = seeded_rng(config_.seed + 1);
        return nn::Conv2d(config_.base_width, 2 * config_.base_width, 3, 2, 1,
                          true, rng);
      }()),
      down2_([&] {
        Rng rng = seeded_rng(config_.seed + 2);
        return nn::Conv2d(2 * config_.base_width, 4 * config_.base_width, 3,
                          2, 1, true, rng);
      }()),
      bott_([&] {
        Rng rng = seeded_rng(config_.seed + 3);
        return nn::Conv2d(4 * config_.base_width, 4 * config_.base_width, 3,
                          1, 1, true, rng);
      }()),
      up1_([&] {
        Rng rng = seeded_rng(config_.seed + 4);
        return nn::ConvTranspose2d(4 * config_.base_width,
                                   2 * config_.base_width, 2, 2, 0, true,
                                   rng);
      }()),
      dec1_([&] {
        Rng rng = seeded_rng(config_.seed + 5);
        return nn::Conv2d(4 * config_.base_width, 2 * config_.base_width, 3,
                          1, 1, true, rng);
      }()),
      up2_([&] {
        Rng rng = seeded_rng(config_.seed + 6);
        return nn::ConvTranspose2d(2 * config_.base_width, config_.base_width,
                                   2, 2, 0, true, rng);
      }()),
      dec2_([&] {
        Rng rng = seeded_rng(config_.seed + 7);
        return nn::Conv2d(2 * config_.base_width, config_.base_width, 3, 1, 1,
                          true, rng);
      }()),
      head_([&] {
        Rng rng = seeded_rng(config_.seed + 8);
        return nn::Conv2d(config_.base_width, 2, 3, 1, 1, true, rng);
      }()) {}

nn::Tensor MaskNet::forward(const nn::Tensor& input, bool training) {
  require(input.rank() == 4 && input.dim(1) == 3 &&
              input.dim(2) == config_.grid_size &&
              input.dim(3) == config_.grid_size,
          "MaskNet::forward: expects [N, 3, S, S] at the configured grid");

  skip_e1_ = relu_enc1_.forward(enc1_.forward(input, training), training);
  skip_e2_ =
      relu_down1_.forward(down1_.forward(skip_e1_, training), training);
  nn::Tensor x =
      relu_down2_.forward(down2_.forward(skip_e2_, training), training);
  x = relu_bott_.forward(bott_.forward(x, training), training);

  x = up1_.forward(x, training);
  x = nn::concat_channels(x, skip_e2_);
  x = relu_dec1_.forward(dec1_.forward(x, training), training);

  x = up2_.forward(x, training);
  x = nn::concat_channels(x, skip_e1_);
  x = relu_dec2_.forward(dec2_.forward(x, training), training);

  nn::Tensor out = head_.forward(x, training);
  // Cold-init residual: P_k += c * (2 * raster_k - 1), the +/- initial_p
  // field IltState would have used (raster_k is input channel k + 1).
  const float c = static_cast<float>(config_.cold_residual);
  const int plane = config_.grid_size * config_.grid_size;
  for (int b = 0; b < input.dim(0); ++b)
    for (int k = 0; k < 2; ++k) {
      const float* raster =
          input.data() + static_cast<std::size_t>(b * 3 + 1 + k) * plane;
      float* o = out.data() + static_cast<std::size_t>(b * 2 + k) * plane;
      for (int i = 0; i < plane; ++i)
        o[i] += c * (2.0f * raster[i] - 1.0f);
    }
  return out;
}

nn::Tensor MaskNet::backward(const nn::Tensor& grad_output) {
  nn::Tensor g = head_.backward(grad_output);
  g = dec2_.backward(relu_dec2_.backward(g));
  nn::Tensor g_up2, g_skip1;
  nn::split_channels(g, config_.base_width, g_up2, g_skip1);
  g = up2_.backward(g_up2);

  g = dec1_.backward(relu_dec1_.backward(g));
  nn::Tensor g_up1, g_skip2;
  nn::split_channels(g, 2 * config_.base_width, g_up1, g_skip2);
  g = up1_.backward(g_up1);

  g = down2_.backward(relu_down2_.backward(bott_.backward(
      relu_bott_.backward(g))));
  // The skip adds its branch gradient to the encoder path's.
  for (std::size_t i = 0; i < g.size(); ++i) g[i] += g_skip2[i];

  g = down1_.backward(relu_down1_.backward(g));
  for (std::size_t i = 0; i < g.size(); ++i) g[i] += g_skip1[i];

  nn::Tensor g_input = enc1_.backward(relu_enc1_.backward(g));
  // Pass-through gradient of the cold-init residual: d P_k / d raster_k
  // is the constant 2c on input channel k + 1.
  const float c2 = 2.0f * static_cast<float>(config_.cold_residual);
  const int plane = config_.grid_size * config_.grid_size;
  for (int b = 0; b < g_input.dim(0); ++b)
    for (int k = 0; k < 2; ++k) {
      const float* go =
          grad_output.data() + static_cast<std::size_t>(b * 2 + k) * plane;
      float* gi = g_input.data() +
                  static_cast<std::size_t>(b * 3 + 1 + k) * plane;
      for (int i = 0; i < plane; ++i) gi[i] += c2 * go[i];
    }
  return g_input;
}

std::vector<nn::Parameter*> MaskNet::parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Layer* layer :
       {static_cast<nn::Layer*>(&enc1_), static_cast<nn::Layer*>(&down1_),
        static_cast<nn::Layer*>(&down2_), static_cast<nn::Layer*>(&bott_),
        static_cast<nn::Layer*>(&up1_), static_cast<nn::Layer*>(&dec1_),
        static_cast<nn::Layer*>(&up2_), static_cast<nn::Layer*>(&dec2_),
        static_cast<nn::Layer*>(&head_)}) {
    for (nn::Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::size_t MaskNet::parameter_count() {
  std::size_t count = 0;
  for (nn::Parameter* p : parameters()) count += p->value.size();
  return count;
}

}  // namespace ldmo::warmstart
