#include "warmstart/warm_start.h"

#include "common/failpoint.h"
#include "common/hash.h"
#include "layout/raster.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldmo::warmstart {

MaskWarmStart::MaskWarmStart(MaskNetConfig config) : net_(config) {
  refresh_version();
}

std::uint64_t MaskWarmStart::compute_version() const {
  common::Fnv1a h;
  h.str("ldmo.warmstart.masknet.v1");
  h.u64(static_cast<std::uint64_t>(net_.config().grid_size));
  h.u64(static_cast<std::uint64_t>(net_.config().base_width));
  for (nn::Parameter* p : net_.parameters())
    h.bytes(p->value.data(), p->value.size() * sizeof(float));
  return h.digest();
}

void MaskWarmStart::load(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  nn::load_parameters(net_.parameters(), path);
  version_ = compute_version();  // version_ must always describe net_
}

void MaskWarmStart::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  nn::save_parameters(net_.parameters(), path);
}

void MaskWarmStart::refresh_version() {
  std::lock_guard<std::mutex> lock(mutex_);
  version_ = compute_version();
}

void MaskWarmStart::seed(const layout::Layout& layout,
                         const layout::Assignment& assignment, GridF& p1,
                         GridF& p2) const {
  static obs::Counter& seeds_counter = obs::counter("warmstart.seeds");
  fail::maybe_fail("warmstart.predict", FlowStage::kPredict);
  obs::Span span("warmstart.seed");
  span.attr("layout", layout.name);

  const int n = net_.config().grid_size;
  const GridF target = layout::rasterize_target(layout, n);
  const GridF r1 = layout::rasterize_mask(layout, assignment, 0, n);
  const GridF r2 = layout::rasterize_mask(layout, assignment, 1, n);

  nn::Tensor input({1, 3, n, n});
  const std::size_t plane = static_cast<std::size_t>(n) * n;
  for (std::size_t i = 0; i < plane; ++i) {
    input[i] = static_cast<float>(target[i]);
    input[plane + i] = static_cast<float>(r1[i]);
    input[2 * plane + i] = static_cast<float>(r2[i]);
  }

  nn::Tensor output;
  {
    // The conv layers cache activations per forward, so predictions are
    // serialized; the flow computes seeds serially anyway (bit-identity),
    // this guards cross-engine sharing in the serving layer.
    std::lock_guard<std::mutex> lock(mutex_);
    output = net_.forward(input, /*training=*/false);
  }

  p1.resize(n, n);
  p2.resize(n, n);
  for (std::size_t i = 0; i < plane; ++i) {
    p1[i] = static_cast<double>(output[i]);
    p2[i] = static_cast<double>(output[plane + i]);
  }
  seeds_counter.inc();
}

}  // namespace ldmo::warmstart
