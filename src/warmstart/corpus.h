// Append-only binary training corpus for the warm-start MaskNet.
//
// One file holds clips at a fixed grid resolution. Layout:
//
//   header:  magic "LDMOWSC1" (8 bytes) + u32 little-endian grid_size
//   records: 5 float32 planes of grid_size^2 each, in order
//              target, raster1, raster2, mask1, mask2
//            followed by a u64 FNV-1a checksum of the 5 planes' bytes.
//
// Records are fixed-size, so the count is derived from the file size; a
// file whose size is not header + k * record is rejected outright, as is
// any record whose checksum does not match (torn append, bit rot). The
// harvester appends with CorpusWriter; training reads the whole file with
// read_corpus. No index, no compaction — the corpus is write-once data
// that retrains a model, not a database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldmo::warmstart {

/// One harvested training triple, flattened row-major (grid^2 floats per
/// plane): the rasterized target, the two decomposition mask rasters, and
/// the two ILT-optimized binary masks the flow produced for them.
struct ClipRecord {
  std::vector<float> target;
  std::vector<float> raster1;
  std::vector<float> raster2;
  std::vector<float> mask1;
  std::vector<float> mask2;
};

/// A fully validated in-memory corpus.
struct Corpus {
  int grid_size = 0;
  std::vector<ClipRecord> records;
};

/// Appends records to `path`, creating the file (with header) when absent.
/// Opening an existing file validates its header against `grid_size`.
class CorpusWriter {
 public:
  CorpusWriter(std::string path, int grid_size);

  /// Appends one record (all planes must be grid_size^2). Throws on I/O
  /// failure; the flush happens per append so a crash loses at most the
  /// record being written — which the strict reader then rejects by size.
  void append(const ClipRecord& record);

  int grid_size() const { return grid_size_; }
  std::size_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int grid_size_ = 0;
  std::size_t appended_ = 0;
};

/// Reads and validates an entire corpus file. Throws ldmo::Error on bad
/// magic, bad grid size, a size that is not a whole number of records, or
/// any checksum mismatch — a corrupt corpus never trains a model halfway.
Corpus read_corpus(const std::string& path);

/// Record count of a corpus file without reading the payload (header and
/// size validation only).
std::size_t corpus_record_count(const std::string& path);

}  // namespace ldmo::warmstart
