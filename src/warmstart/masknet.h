// MaskNet: the warm-start encoder-decoder (ROADMAP item 2).
//
// A small UNet mapping the rasterized flow inputs — target plane plus the
// two decomposition mask rasters — to continuous per-mask P-field
// initializations for ILT, replacing IltState's +/- initial_p cold start.
// Two downsampling stages with skip connections keep it cheap enough to
// run once per speculative attempt on a CPU serving path while preserving
// the pixel alignment the P fields need.
//
//   input  [N, 3, S, S]   (target, raster1, raster2)
//   enc1:  3x3 conv (3 -> w) + ReLU                         -- skip to dec2
//   down1: 3x3 conv stride 2 (w -> 2w) + ReLU               -- skip to dec1
//   down2: 3x3 conv stride 2 (2w -> 4w) + ReLU
//   bott:  3x3 conv (4w -> 4w) + ReLU
//   up1:   2x2 deconv stride 2 (4w -> 2w), concat skip, 3x3 conv + ReLU
//   up2:   2x2 deconv stride 2 (2w -> w),  concat skip, 3x3 conv + ReLU
//   head:  3x3 conv (w -> 2), linear
//          + cold_residual * (2 * raster_k - 1)   -- cold-init residual
//   output [N, 2, S, S]   (P1, P2)
//
// Like ResNetRegressor, forward/backward are hand-written (the skip
// connections need explicit gradient routing through split_channels), and
// forward() caches activations — one forward/backward in flight at a time;
// the serving wrapper (MaskWarmStart) serializes concurrent predictions.
#pragma once

#include <cstdint>

#include "nn/conv.h"
#include "nn/deconv.h"
#include "nn/upsample.h"

namespace ldmo::warmstart {

struct MaskNetConfig {
  int grid_size = 64;   ///< must match the litho simulator grid; % 4 == 0
  int base_width = 8;   ///< w above; capacity knob
  std::uint64_t seed = 4242;  ///< weight initialization seed
  /// The head output is a *residual* on the paper's cold init: the final
  /// P_k adds cold_residual * (2 * raster_k - 1) — exactly IltState's
  /// +/- initial_p field, which the raster input channels encode. A
  /// freshly initialized net therefore starts at cold-init quality and
  /// training can only improve on it (without this, the class-imbalanced
  /// mask loss has a "predict everything empty" plateau that an
  /// encoder-decoder of this size falls into). Match IltConfig::initial_p.
  double cold_residual = 0.25;
};

class MaskNet {
 public:
  explicit MaskNet(MaskNetConfig config = {});

  const MaskNetConfig& config() const { return config_; }

  /// [N, 3, S, S] planes -> [N, 2, S, S] P fields.
  nn::Tensor forward(const nn::Tensor& input, bool training);

  /// Backpropagates d(loss)/d(output); accumulates parameter gradients.
  nn::Tensor backward(const nn::Tensor& grad_output);

  std::vector<nn::Parameter*> parameters();

  /// Total trainable scalar count (diagnostic).
  std::size_t parameter_count();

 private:
  MaskNetConfig config_;

  nn::Conv2d enc1_;
  nn::ReLU relu_enc1_;
  nn::Conv2d down1_;
  nn::ReLU relu_down1_;
  nn::Conv2d down2_;
  nn::ReLU relu_down2_;
  nn::Conv2d bott_;
  nn::ReLU relu_bott_;
  nn::ConvTranspose2d up1_;
  nn::Conv2d dec1_;
  nn::ReLU relu_dec1_;
  nn::ConvTranspose2d up2_;
  nn::Conv2d dec2_;
  nn::ReLU relu_dec2_;
  nn::Conv2d head_;

  // Skip activations cached by forward() for the concat backward.
  nn::Tensor skip_e1_;
  nn::Tensor skip_e2_;
};

}  // namespace ldmo::warmstart
