#include "geometry/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo::geometry {

SpatialIndex::SpatialIndex(const Rect& world, std::int64_t cell_size)
    : world_(world), cell_size_(cell_size) {
  require(cell_size > 0, "SpatialIndex: cell_size must be positive");
  nx_ = static_cast<int>((world.width() + cell_size - 1) / cell_size) + 1;
  ny_ = static_cast<int>((world.height() + cell_size - 1) / cell_size) + 1;
  cells_.resize(static_cast<std::size_t>(nx_) * ny_);
}

SpatialIndex::CellRange SpatialIndex::cells_for(const Rect& r) const {
  auto clampi = [](std::int64_t v, int hi) {
    return static_cast<int>(std::clamp<std::int64_t>(v, 0, hi));
  };
  CellRange range;
  range.cx0 = clampi((r.lo.x - world_.lo.x) / cell_size_, nx_ - 1);
  range.cy0 = clampi((r.lo.y - world_.lo.y) / cell_size_, ny_ - 1);
  range.cx1 = clampi((r.hi.x - world_.lo.x) / cell_size_, nx_ - 1);
  range.cy1 = clampi((r.hi.y - world_.lo.y) / cell_size_, ny_ - 1);
  return range;
}

int SpatialIndex::insert(const Rect& rect) {
  const int id = static_cast<int>(rects_.size());
  rects_.push_back(rect);
  const CellRange range = cells_for(rect);
  for (int cy = range.cy0; cy <= range.cy1; ++cy)
    for (int cx = range.cx0; cx <= range.cx1; ++cx)
      cells_[static_cast<std::size_t>(cell_index(cx, cy))].push_back(id);
  return id;
}

std::vector<int> SpatialIndex::query_within(const Rect& query, double radius,
                                            int exclude_id) const {
  const std::int64_t margin =
      static_cast<std::int64_t>(std::ceil(std::max(radius, 0.0)));
  const CellRange range = cells_for(query.inflated(margin));
  std::vector<int> result;
  for (int cy = range.cy0; cy <= range.cy1; ++cy) {
    for (int cx = range.cx0; cx <= range.cx1; ++cx) {
      for (int id : cells_[static_cast<std::size_t>(cell_index(cx, cy))]) {
        if (id == exclude_id) continue;
        if (rect_distance(rects_[static_cast<std::size_t>(id)], query) <=
            radius)
          result.push_back(id);
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<int> SpatialIndex::query_intersecting(const Rect& query) const {
  return query_within(query, 0.0);
}

const Rect& SpatialIndex::rect(int id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < rects_.size(),
          "SpatialIndex::rect: id out of range");
  return rects_[static_cast<std::size_t>(id)];
}

}  // namespace ldmo::geometry
