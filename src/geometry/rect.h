// Axis-aligned rectangle in nm layout coordinates.
//
// Contact patterns (the paper's workload: NanGate-like contact layers) are
// rectangles, so Rect is the fundamental pattern shape of the whole
// framework. Distances between rectangles drive pattern classification
// (Eq. 6) and conflict-graph edge weights (Fig. 3).
#pragma once

#include <cstdint>

#include "geometry/point.h"

namespace ldmo::geometry {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y] in nm.
/// Invariant: lo.x <= hi.x and lo.y <= hi.y (enforced by make()).
struct Rect {
  Point lo;
  Point hi;

  friend bool operator==(const Rect&, const Rect&) = default;

  /// Builds a rect from any two corners, normalizing the corner order.
  static Rect make(Point a, Point b);

  /// Builds a rect from lower-left corner and dimensions. Throws if w/h < 0.
  static Rect from_size(Point lower_left, std::int64_t width,
                        std::int64_t height);

  std::int64_t width() const { return hi.x - lo.x; }
  std::int64_t height() const { return hi.y - lo.y; }
  std::int64_t area() const { return width() * height(); }

  /// Geometric center (rounded toward lo for odd sizes).
  Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  /// True if `p` lies inside or on the boundary.
  bool contains(const Point& p) const;

  /// True if the two closed rectangles share any point (touching counts).
  bool intersects(const Rect& other) const;

  /// Rect grown by `margin` nm on every side (negative shrinks; the result
  /// is clamped so it never inverts).
  Rect inflated(std::int64_t margin) const;

  /// Rect translated by `delta`.
  Rect translated(const Point& delta) const;
};

/// Minimum Euclidean edge-to-edge distance between two rectangles in nm;
/// 0 if they touch or overlap. This is the spacing measure used to classify
/// patterns into SP/VP/NP (Eq. 6) and to weight conflict-graph edges.
double rect_distance(const Rect& a, const Rect& b);

/// Minimum distance from a point to the rectangle boundary-or-interior.
double rect_point_distance(const Rect& r, const Point& p);

}  // namespace ldmo::geometry
