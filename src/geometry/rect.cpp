#include "geometry/rect.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo::geometry {

Rect Rect::make(Point a, Point b) {
  Rect r;
  r.lo = {std::min(a.x, b.x), std::min(a.y, b.y)};
  r.hi = {std::max(a.x, b.x), std::max(a.y, b.y)};
  return r;
}

Rect Rect::from_size(Point lower_left, std::int64_t width,
                     std::int64_t height) {
  require(width >= 0 && height >= 0, "Rect::from_size: negative dimensions");
  return {lower_left, {lower_left.x + width, lower_left.y + height}};
}

bool Rect::contains(const Point& p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

bool Rect::intersects(const Rect& other) const {
  return lo.x <= other.hi.x && other.lo.x <= hi.x && lo.y <= other.hi.y &&
         other.lo.y <= hi.y;
}

Rect Rect::inflated(std::int64_t margin) const {
  Rect r{{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  if (r.lo.x > r.hi.x) r.lo.x = r.hi.x = (lo.x + hi.x) / 2;
  if (r.lo.y > r.hi.y) r.lo.y = r.hi.y = (lo.y + hi.y) / 2;
  return r;
}

Rect Rect::translated(const Point& delta) const {
  return {lo + delta, hi + delta};
}

double rect_distance(const Rect& a, const Rect& b) {
  // Gap along each axis; zero when projections overlap.
  const std::int64_t dx =
      std::max<std::int64_t>({a.lo.x - b.hi.x, b.lo.x - a.hi.x, 0});
  const std::int64_t dy =
      std::max<std::int64_t>({a.lo.y - b.hi.y, b.lo.y - a.hi.y, 0});
  return std::sqrt(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy);
}

double rect_point_distance(const Rect& r, const Point& p) {
  const std::int64_t dx =
      std::max<std::int64_t>({r.lo.x - p.x, p.x - r.hi.x, 0});
  const std::int64_t dy =
      std::max<std::int64_t>({r.lo.y - p.y, p.y - r.hi.y, 0});
  return std::sqrt(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy);
}

}  // namespace ldmo::geometry
