// Integer lattice point in layout coordinates (1 unit = 1 nm).
#pragma once

#include <cmath>
#include <cstdint>

namespace ldmo::geometry {

/// 2-D point with nanometer integer coordinates.
struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Euclidean distance between two points, in nm.
inline double distance(const Point& a, const Point& b) {
  const double dx = static_cast<double>(a.x - b.x);
  const double dy = static_cast<double>(a.y - b.y);
  return std::sqrt(dx * dx + dy * dy);
}

/// 2-D point with floating-point coordinates (sub-nm positions such as EPE
/// checkpoints and printed-contour intersections).
struct PointF {
  double x = 0.0;
  double y = 0.0;
};

}  // namespace ldmo::geometry
