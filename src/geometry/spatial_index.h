// Uniform-grid spatial index over rectangles.
//
// Neighbor queries (all patterns within nmax of a pattern) are the inner loop
// of conflict-graph construction; the uniform grid makes them O(neighbors)
// instead of O(n) per query, which matters for the 8000-layout corpus runs.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace ldmo::geometry {

/// Grid index mapping rectangles (by caller-supplied id = insertion order)
/// to buckets of a uniform grid covering a fixed world window.
class SpatialIndex {
 public:
  /// `world` is the clip window all rects live in; `cell_size` the grid pitch
  /// in nm (typically >= the largest query radius for best performance).
  SpatialIndex(const Rect& world, std::int64_t cell_size);

  /// Inserts a rect and returns its id (sequential from 0).
  int insert(const Rect& rect);

  /// Ids of all rects whose edge-to-edge distance to `query` is <= radius.
  /// The query rect itself (by id) is excluded when `exclude_id` >= 0.
  std::vector<int> query_within(const Rect& query, double radius,
                                int exclude_id = -1) const;

  /// Ids of all rects intersecting `query`.
  std::vector<int> query_intersecting(const Rect& query) const;

  std::size_t size() const { return rects_.size(); }
  const Rect& rect(int id) const;

 private:
  struct CellRange {
    int cx0, cy0, cx1, cy1;
  };
  CellRange cells_for(const Rect& r) const;
  int cell_index(int cx, int cy) const { return cy * nx_ + cx; }

  Rect world_;
  std::int64_t cell_size_;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::vector<int>> cells_;
  std::vector<Rect> rects_;
};

}  // namespace ldmo::geometry
