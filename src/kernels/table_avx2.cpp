// AVX2 kernel backend (256-bit: 4 doubles / 8 floats / 2 complex<double>).
//
// Compiled with -mavx2 -ffp-contract=off in its own translation unit; the
// rest of the binary never needs AVX2, so the table is only registered when
// the running CPU reports the feature.
//
// Exactness: every op except the vectorized exp (sigmoid_affine_f64) and
// the lane-parallel sum reductions (dot_f32 / loss_grad_f64 /
// sq_diff_sum_f64) performs the same IEEE mul/add/sub sequence per element
// as the generic backend — no FMA, no reassociation — so results are
// bit-identical to generic (modulo the sign of zero in the first FFT
// stage, which uses a direct add/sub instead of multiplying by the 1+0i
// twiddle).
#include "kernels/kernels.h"

#ifdef LDMO_KERNELS_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "kernels/generic_ops.h"

namespace ldmo::kernels {
namespace {

using generic::bilinear_one;

// ---- vector exp for x <= 0 (Cody-Waite reduction + degree-12 Taylor) ----
// Max observed relative error vs libm exp is ~2 ulp on [-708, 0]; inputs
// below -708 flush to 0 (the sigmoid saturation regime).
inline __m256d exp_le0_pd(__m256d x) {
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d kLn2Hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d kLn2Lo = _mm256_set1_pd(1.90821492927058770002e-10);
  __m256d n = _mm256_round_pd(_mm256_mul_pd(x, kLog2e),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_sub_pd(x, _mm256_mul_pd(n, kLn2Hi));
  r = _mm256_sub_pd(r, _mm256_mul_pd(n, kLn2Lo));
  // Horner over Taylor coefficients 1/k!, k = 12 .. 0.
  __m256d p = _mm256_set1_pd(2.08767569878680989792e-09);   // 1/12!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(2.50521083854417187751e-08));  // 1/11!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(2.75573192239858906526e-07));  // 1/10!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(2.75573192239858925110e-06));  // 1/9!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(2.48015873015873015873e-05));  // 1/8!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(1.98412698412698412698e-04));  // 1/7!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(1.38888888888888888889e-03));  // 1/6!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(8.33333333333333333333e-03));  // 1/5!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(4.16666666666666666667e-02));  // 1/4!
  p = _mm256_add_pd(_mm256_mul_pd(p, r),
                    _mm256_set1_pd(1.66666666666666666667e-01));  // 1/3!
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(0.5));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  // Scale by 2^n through the exponent bits (n in [-1074, 0] here; lanes
  // whose n underflows the exponent field are flushed below anyway).
  __m128i n32 = _mm256_cvtpd_epi32(n);
  __m256i n64 = _mm256_cvtepi32_epi64(n32);
  __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  __m256d result = _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
  const __m256d ok = _mm256_cmp_pd(x, _mm256_set1_pd(-708.0), _CMP_GT_OQ);
  return _mm256_and_pd(result, ok);
}

// ---- vector sincos (Cody-Waite pi/2 reduction + Taylor on [-pi/4, pi/4]) --
// Three-part reduction keeps the reduced argument accurate to ~1e-21 * n,
// so absolute error vs libm stays ~1e-14 for |x| < 1e6 — far beyond the
// defocus phases this feeds (|phi| < ~1e3).
inline void sincos_pd(__m256d x, __m256d* s_out, __m256d* c_out) {
  const __m256d kTwoOverPi = _mm256_set1_pd(6.36619772367581382433e-01);
  const __m256d kPio2Hi = _mm256_set1_pd(1.57079632673412561417e+00);
  const __m256d kPio2Mid = _mm256_set1_pd(6.07710050630396597660e-11);
  const __m256d kPio2Lo = _mm256_set1_pd(2.02226624871116645580e-21);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, kTwoOverPi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_sub_pd(x, _mm256_mul_pd(n, kPio2Hi));
  r = _mm256_sub_pd(r, _mm256_mul_pd(n, kPio2Mid));
  r = _mm256_sub_pd(r, _mm256_mul_pd(n, kPio2Lo));
  const __m256d r2 = _mm256_mul_pd(r, r);
  // sin(r) = r + r^3 P(r^2), Taylor through r^15.
  __m256d ps = _mm256_set1_pd(-7.64716373181981647590e-13);       // -1/15!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(1.60590438368216145994e-10));  // 1/13!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(-2.50521083854417187751e-08));  // -1/11!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(2.75573192239858906526e-06));  // 1/9!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(-1.98412698412698412698e-04));  // -1/7!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(8.33333333333333333333e-03));  // 1/5!
  ps = _mm256_add_pd(_mm256_mul_pd(ps, r2),
                     _mm256_set1_pd(-1.66666666666666666667e-01));  // -1/3!
  const __m256d sin_r =
      _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r2, r), ps));
  // cos(r) = 1 - r^2/2 + r^4 Q(r^2), Taylor through r^14.
  __m256d pc = _mm256_set1_pd(-1.14707455977297247139e-11);       // -1/14!
  pc = _mm256_add_pd(_mm256_mul_pd(pc, r2),
                     _mm256_set1_pd(2.08767569878680989792e-09));  // 1/12!
  pc = _mm256_add_pd(_mm256_mul_pd(pc, r2),
                     _mm256_set1_pd(-2.75573192239858906526e-07));  // -1/10!
  pc = _mm256_add_pd(_mm256_mul_pd(pc, r2),
                     _mm256_set1_pd(2.48015873015873015873e-05));  // 1/8!
  pc = _mm256_add_pd(_mm256_mul_pd(pc, r2),
                     _mm256_set1_pd(-1.38888888888888888889e-03));  // -1/6!
  pc = _mm256_add_pd(_mm256_mul_pd(pc, r2),
                     _mm256_set1_pd(4.16666666666666666667e-02));  // 1/4!
  const __m256d cos_r = _mm256_add_pd(
      _mm256_sub_pd(_mm256_set1_pd(1.0),
                    _mm256_mul_pd(r2, _mm256_set1_pd(0.5))),
      _mm256_mul_pd(_mm256_mul_pd(r2, r2), pc));
  // Quadrant fixup from q = n mod 4 (two's-complement low bits give the
  // positive residue for negative n too):
  //   sin(x) = [ s,  c, -s, -c][q]    cos(x) = [ c, -s, -c,  s][q]
  const __m256i q = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i two = _mm256_set1_epi64x(2);
  const __m256d swap = _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(_mm256_and_si256(q, one), one));
  const __m256d sin_sign = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_and_si256(q, two), 62));
  const __m256d cos_sign = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(_mm256_add_epi64(q, one), two), 62));
  *s_out = _mm256_xor_pd(_mm256_blendv_pd(sin_r, cos_r, swap), sin_sign);
  *c_out = _mm256_xor_pd(_mm256_blendv_pd(cos_r, sin_r, swap), cos_sign);
}

// Packed complex product: lanes hold [re0, im0, re1, im1].
inline __m256d cmul_pd(__m256d a, __m256d b) {
  const __m256d ar = _mm256_movedup_pd(a);        // [ar0, ar0, ar1, ar1]
  const __m256d ai = _mm256_permute_pd(a, 0xF);   // [ai0, ai0, ai1, ai1]
  const __m256d bs = _mm256_permute_pd(b, 0x5);   // [bi0, br0, bi1, br1]
  return _mm256_addsub_pd(_mm256_mul_pd(ar, b), _mm256_mul_pd(ai, bs));
}

constexpr int kBlock = 64;  // same cache blocking as the generic backend

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n) {
  for (int i0 = i_begin; i0 < i_end; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, i_end);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a + static_cast<std::size_t>(i) * k;
          float* crow = c + static_cast<std::size_t>(i) * n;
          int j = j0;
          // 32-wide register tile: accumulate the whole p-block in
          // registers, then store. Each c[j] sees the same p-ascending
          // add sequence as the generic loop — bit-identical.
          for (; j + 32 <= j1; j += 32) {
            __m256 acc0 = _mm256_loadu_ps(crow + j);
            __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
            __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
            __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
            for (int p = p0; p < p1; ++p) {
              const __m256 av = _mm256_set1_ps(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc0 = _mm256_add_ps(acc0,
                                   _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
              acc1 = _mm256_add_ps(
                  acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
              acc2 = _mm256_add_ps(
                  acc2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
              acc3 = _mm256_add_ps(
                  acc3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
            }
            _mm256_storeu_ps(crow + j, acc0);
            _mm256_storeu_ps(crow + j + 8, acc1);
            _mm256_storeu_ps(crow + j + 16, acc2);
            _mm256_storeu_ps(crow + j + 24, acc3);
          }
          for (; j + 8 <= j1; j += 8) {
            __m256 acc = _mm256_loadu_ps(crow + j);
            for (int p = p0; p < p1; ++p) {
              const __m256 av = _mm256_set1_ps(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc = _mm256_add_ps(acc,
                                  _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
            }
            _mm256_storeu_ps(crow + j, acc);
          }
          for (int p = p0; p < p1 && j < j1; ++p) {
            const float av = arow[p];
            const float* brow = b + static_cast<std::size_t>(p) * n;
            for (int jj = j; jj < j1; ++jj) crow[jj] += av * brow[jj];
          }
        }
      }
    }
  }
}

void axpy_f32(float alpha, const float* x, float* y, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

float dot_f32(const float* x, const float* y, int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void sigmoid_affine_f64(const double* x, double* out, std::size_t n,
                        double scale, double shift) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vshift = _mm256_set1_pd(shift);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kSign = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d z = _mm256_mul_pd(
        vscale, _mm256_sub_pd(_mm256_loadu_pd(x + i), vshift));
    const __m256d neg_abs = _mm256_or_pd(z, kSign);  // -|z|
    const __m256d e = exp_le0_pd(neg_abs);
    const __m256d denom = _mm256_add_pd(kOne, e);
    const __m256d pos = _mm256_div_pd(kOne, denom);  // z >= 0 branch
    const __m256d neg = _mm256_div_pd(e, denom);     // z <  0 branch
    const __m256d take_pos =
        _mm256_cmp_pd(z, _mm256_setzero_pd(), _CMP_GE_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(neg, pos, take_pos));
  }
  if (i < n) generic::sigmoid_affine_f64(x + i, out + i, n - i, scale, shift);
}

void cis_f64(const double* phase, Complex* out, std::size_t n) {
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, op += 8) {
    __m256d s, c;
    sincos_pd(_mm256_loadu_pd(phase + i), &s, &c);
    const __m256d lo = _mm256_unpacklo_pd(c, s);  // [c0 s0 c2 s2]
    const __m256d hi = _mm256_unpackhi_pd(c, s);  // [c1 s1 c3 s3]
    _mm256_storeu_pd(op, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(op + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  if (i < n) generic::cis_f64(phase + i, out + i, n - i);
}

void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta) {
  const __m256d vt = _mm256_set1_pd(theta);
  const __m256d kOne = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(t + i);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_mul_pd(vt, v),
                                            _mm256_sub_pd(kOne, v)));
  }
  for (; i < n; ++i) out[i] = theta * t[i] * (1.0 - t[i]);
}

void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n) {
  const __m256d kOne = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_min_pd(
                     _mm256_add_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)),
                     kOne));
  for (; i < n; ++i) out[i] = std::min(a[i] + b[i], 1.0);
}

void add_f64(const double* a, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                            _mm256_loadu_pd(a + i)));
  for (; i < n; ++i) out[i] += a[i];
}

void clamp_max_f64(double* a, std::size_t n, double hi) {
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(a + i, _mm256_min_pd(_mm256_loadu_pd(a + i), vhi));
  for (; i < n; ++i) a[i] = std::min(a[i], hi);
}

void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  const __m256d kOne = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d lt = _mm256_cmp_pd(sum, kOne, _CMP_LT_OQ);
    _mm256_storeu_pd(out + i, _mm256_and_pd(lt, kOne));
  }
  for (; i < n; ++i) out[i] = (a[i] + b[i] < 1.0) ? 1.0 : 0.0;
}

double loss_grad_f64(const double* t, const double* target,
                     const double* weights, double* dldt, std::size_t n) {
  const __m256d kTwo = _mm256_set1_pd(2.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(t + i), _mm256_loadu_pd(target + i));
    const __m256d w =
        weights ? _mm256_loadu_pd(weights + i) : _mm256_set1_pd(1.0);
    const __m256d wd = _mm256_mul_pd(w, d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(wd, d));
    _mm256_storeu_pd(dldt + i, _mm256_mul_pd(_mm256_mul_pd(kTwo, w), d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double loss = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double w = weights ? weights[i] : 1.0;
    const double d = t[i] - target[i];
    loss += w * d * d;
    dldt[i] = 2.0 * w * d;
  }
  return loss;
}

double max_abs_f64(const double* x, std::size_t n) {
  const __m256d kSign = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_max_pd(acc,
                        _mm256_andnot_pd(kSign, _mm256_loadu_pd(x + i)));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void descend_f64(double* p, const double* g, double scale, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        p + i, _mm256_sub_pd(_mm256_loadu_pd(p + i),
                             _mm256_mul_pd(vs, _mm256_loadu_pd(g + i))));
  for (; i < n; ++i) p[i] -= scale * g[i];
}

void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n) {
  const __m256d vt = _mm256_set1_pd(theta);
  const __m256d kOne = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d mv = _mm256_loadu_pd(m + i);
    const __m256d factor = _mm256_mul_pd(_mm256_mul_pd(vt, mv),
                                         _mm256_sub_pd(kOne, mv));
    _mm256_storeu_pd(g + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), factor));
  }
  for (; i < n; ++i) g[i] *= theta * m[i] * (1.0 - m[i]);
}

double sq_diff_sum_f64(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void cmul_f64(Complex* a, const Complex* b, std::size_t n) {
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2, ap += 4, bp += 4)
    _mm256_storeu_pd(ap, cmul_pd(_mm256_loadu_pd(ap), _mm256_loadu_pd(bp)));
  if (i < n) generic::cmul_f64(a + i, b + i, n - i);
}

void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2, ap += 4, bp += 4, op += 4)
    _mm256_storeu_pd(op, cmul_pd(_mm256_loadu_pd(ap), _mm256_loadu_pd(bp)));
  if (i < n) generic::cmul_to_f64(a + i, b + i, out + i, n - i);
}

void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  // Conjugate b by flipping the sign of the imaginary lanes.
  const __m256d conj_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  double* cp = reinterpret_cast<double*>(acc);
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2, cp += 4, ap += 4, bp += 4) {
    const __m256d wa = _mm256_mul_pd(vw, _mm256_loadu_pd(ap));
    const __m256d bc = _mm256_xor_pd(_mm256_loadu_pd(bp), conj_mask);
    _mm256_storeu_pd(
        cp, _mm256_add_pd(_mm256_loadu_pd(cp), cmul_pd(wa, bc)));
  }
  if (i < n) generic::cmul_conj_accum_f64(acc + i, a + i, b + i, w, n - i);
}

void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  const double* ap = reinterpret_cast<const double*>(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8) {
    const __m256d v0 = _mm256_loadu_pd(ap);      // [r0 i0 r1 i1]
    const __m256d v1 = _mm256_loadu_pd(ap + 4);  // [r2 i2 r3 i3]
    const __m256d sq0 = _mm256_mul_pd(v0, v0);
    const __m256d sq1 = _mm256_mul_pd(v1, v1);
    // hadd interleaves blocks: [n0 n2 n1 n3] -> permute to [n0 n1 n2 n3].
    const __m256d norms = _mm256_permute4x64_pd(
        _mm256_hadd_pd(sq0, sq1), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                            _mm256_mul_pd(vw, norms)));
  }
  if (i < n) generic::norm_weighted_accum_f64(out + i, a + i, w, n - i);
}

void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8, op += 8) {
    const __m256d rv = _mm256_loadu_pd(r + i);  // [r0 r1 r2 r3]
    const __m256d lo =
        _mm256_permute4x64_pd(rv, _MM_SHUFFLE(1, 1, 0, 0));  // [r0 r0 r1 r1]
    const __m256d hi =
        _mm256_permute4x64_pd(rv, _MM_SHUFFLE(3, 3, 2, 2));  // [r2 r2 r3 r3]
    _mm256_storeu_pd(op, _mm256_mul_pd(lo, _mm256_loadu_pd(ap)));
    _mm256_storeu_pd(op + 4, _mm256_mul_pd(hi, _mm256_loadu_pd(ap + 4)));
  }
  if (i < n) generic::real_mul_f64(r + i, a + i, out + i, n - i);
}

void scaled_real_f64(const Complex* a, double s, double* out,
                     std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  const double* ap = reinterpret_cast<const double*>(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8) {
    const __m256d v0 = _mm256_loadu_pd(ap);      // [r0 i0 r1 i1]
    const __m256d v1 = _mm256_loadu_pd(ap + 4);  // [r2 i2 r3 i3]
    // unpacklo -> [r0 r2 r1 r3]; permute to [r0 r1 r2 r3].
    const __m256d reals = _mm256_permute4x64_pd(
        _mm256_unpacklo_pd(v0, v1), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vs, reals));
  }
  if (i < n) generic::scaled_real_f64(a + i, s, out + i, n - i);
}

void scale_complex_f64(Complex* a, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  double* ap = reinterpret_cast<double*>(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2, ap += 4)
    _mm256_storeu_pd(ap, _mm256_mul_pd(vs, _mm256_loadu_pd(ap)));
  if (i < n) generic::scale_complex_f64(a + i, s, n - i);
}

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len) {
  double* dp = reinterpret_cast<double*>(data);
  const int half = len >> 1;
  if (half == 1) {
    // Twiddle is 1+0i: plain add/sub butterfly, one per 2 complexes.
    for (int s = 0; s < 2 * size; s += 4) {
      const __m128d a = _mm_loadu_pd(dp + s);
      const __m128d b = _mm_loadu_pd(dp + s + 2);
      _mm_storeu_pd(dp + s, _mm_add_pd(a, b));
      _mm_storeu_pd(dp + s + 2, _mm_sub_pd(a, b));
    }
    return;
  }
  const double* tp = reinterpret_cast<const double*>(twiddle);
  for (int start = 0; start < size; start += len) {
    double* ap = dp + 2 * start;
    double* bp = ap + 2 * half;
    int k = 0;
    for (; k + 2 <= half; k += 2) {
      const __m256d w = _mm256_loadu_pd(tp + 2 * k);
      const __m256d va = _mm256_loadu_pd(ap + 2 * k);
      const __m256d vb = _mm256_loadu_pd(bp + 2 * k);
      const __m256d t = cmul_pd(w, vb);
      _mm256_storeu_pd(bp + 2 * k, _mm256_sub_pd(va, t));
      _mm256_storeu_pd(ap + 2 * k, _mm256_add_pd(va, t));
    }
    // half >= 2 is always even for radix-2 sizes, so no scalar tail.
  }
}

void bilinear_line_f64(const double* grid, int h, int w, double x0,
                       double y0, double dx, double dy, int count,
                       double* out) {
  const __m256d vdx = _mm256_set1_pd(dx);
  const __m256d vdy = _mm256_set1_pd(dy);
  const __m256d vx0 = _mm256_set1_pd(x0);
  const __m256d vy0 = _mm256_set1_pd(y0);
  const __m256d kHalf = _mm256_set1_pd(0.5);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kZero = _mm256_setzero_pd();
  const __m256d fxmax = _mm256_set1_pd(static_cast<double>(w - 1));
  const __m256d fymax = _mm256_set1_pd(static_cast<double>(h - 1));
  const __m128i ixmax = _mm_set1_epi32(w - 1);
  const __m128i iymax = _mm_set1_epi32(h - 1);
  const __m128i iw = _mm_set1_epi32(w);
  const __m128i ione = _mm_set1_epi32(1);
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d iv = _mm256_set_pd(i + 3, i + 2, i + 1, i);
    const __m256d px = _mm256_add_pd(vx0, _mm256_mul_pd(iv, vdx));
    const __m256d py = _mm256_add_pd(vy0, _mm256_mul_pd(iv, vdy));
    const __m256d fx = _mm256_max_pd(
        kZero, _mm256_min_pd(_mm256_sub_pd(px, kHalf), fxmax));
    const __m256d fy = _mm256_max_pd(
        kZero, _mm256_min_pd(_mm256_sub_pd(py, kHalf), fymax));
    const __m128i x0i = _mm_min_epi32(_mm256_cvttpd_epi32(fx), ixmax);
    const __m128i y0i = _mm_min_epi32(_mm256_cvttpd_epi32(fy), iymax);
    const __m128i x1i = _mm_min_epi32(_mm_add_epi32(x0i, ione), ixmax);
    const __m128i y1i = _mm_min_epi32(_mm_add_epi32(y0i, ione), iymax);
    const __m256d tx = _mm256_sub_pd(fx, _mm256_cvtepi32_pd(x0i));
    const __m256d ty = _mm256_sub_pd(fy, _mm256_cvtepi32_pd(y0i));
    const __m128i row0 = _mm_mullo_epi32(y0i, iw);
    const __m128i row1 = _mm_mullo_epi32(y1i, iw);
    const __m256d g00 =
        _mm256_i32gather_pd(grid, _mm_add_epi32(row0, x0i), 8);
    const __m256d g01 =
        _mm256_i32gather_pd(grid, _mm_add_epi32(row0, x1i), 8);
    const __m256d g10 =
        _mm256_i32gather_pd(grid, _mm_add_epi32(row1, x0i), 8);
    const __m256d g11 =
        _mm256_i32gather_pd(grid, _mm_add_epi32(row1, x1i), 8);
    const __m256d one_tx = _mm256_sub_pd(kOne, tx);
    const __m256d bottom = _mm256_add_pd(_mm256_mul_pd(g00, one_tx),
                                         _mm256_mul_pd(g01, tx));
    const __m256d top = _mm256_add_pd(_mm256_mul_pd(g10, one_tx),
                                      _mm256_mul_pd(g11, tx));
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_mul_pd(bottom,
                                                 _mm256_sub_pd(kOne, ty)),
                                   _mm256_mul_pd(top, ty)));
  }
  for (; i < count; ++i)
    out[i] = bilinear_one(grid, h, w, x0 + i * dx, y0 + i * dy);
}

}  // namespace

namespace detail {

const KernelTable& avx2_table() {
  static const KernelTable t = {
      Backend::kAvx2,
      "avx2",
      &gemm_rows_f32,
      &axpy_f32,
      &dot_f32,
      &sigmoid_affine_f64,
      &cis_f64,
      &resist_deriv_f64,
      &add_clamp1_f64,
      &add_f64,
      &clamp_max_f64,
      &gate_lt1_f64,
      &loss_grad_f64,
      &max_abs_f64,
      &descend_f64,
      &sigmoid_chain_f64,
      &sq_diff_sum_f64,
      &cmul_f64,
      &cmul_to_f64,
      &cmul_conj_accum_f64,
      &norm_weighted_accum_f64,
      &real_mul_f64,
      &scaled_real_f64,
      &scale_complex_f64,
      &fft_pass_f64,
      &bilinear_line_f64,
  };
  return t;
}

}  // namespace detail
}  // namespace ldmo::kernels

#endif  // LDMO_KERNELS_AVX2
