// Generic (portable scalar) kernel backend.
//
// These loops ARE the pre-SIMD hot loops, moved verbatim so that
// `--backend generic` reproduces the original scalar results bit-for-bit
// on any host. They double as the reference implementations the SIMD
// backends are tested against, and as scalar tails inside the SIMD TUs.
#include <algorithm>
#include <cmath>

#include "kernels/generic_ops.h"
#include "kernels/kernels.h"

namespace ldmo::kernels::generic {

namespace {
constexpr int kBlock = 64;  // fits three GEMM blocks in L1/L2 comfortably
}

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n) {
  for (int i0 = i_begin; i0 < i_end; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, i_end);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          float* crow = c + static_cast<std::size_t>(i) * n;
          for (int p = p0; p < p1; ++p) {
            const float av = a[static_cast<std::size_t>(i) * k + p];
            const float* brow = b + static_cast<std::size_t>(p) * n;
            for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void axpy_f32(float alpha, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float dot_f32(const float* x, const float* y, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void sigmoid_affine_f64(const double* x, double* out, std::size_t n,
                        double scale, double shift) {
  for (std::size_t i = 0; i < n; ++i) {
    const double z = scale * (x[i] - shift);
    if (z >= 0.0) {
      out[i] = 1.0 / (1.0 + std::exp(-z));
    } else {
      const double e = std::exp(z);
      out[i] = e / (1.0 + e);
    }
  }
}

void cis_f64(const double* phase, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Complex(std::cos(phase[i]), std::sin(phase[i]));
}

void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta) {
  for (std::size_t i = 0; i < n; ++i) out[i] = theta * t[i] * (1.0 - t[i]);
}

void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::min(a[i] + b[i], 1.0);
}

void add_f64(const double* a, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += a[i];
}

void clamp_max_f64(double* a, std::size_t n, double hi) {
  for (std::size_t i = 0; i < n; ++i) a[i] = std::min(a[i], hi);
}

void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = (a[i] + b[i] < 1.0) ? 1.0 : 0.0;
}

double loss_grad_f64(const double* t, const double* target,
                     const double* weights, double* dldt, std::size_t n) {
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights ? weights[i] : 1.0;
    const double d = t[i] - target[i];
    loss += w * d * d;
    dldt[i] = 2.0 * w * d;
  }
  return loss;
}

double max_abs_f64(const double* x, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void descend_f64(double* p, const double* g, double scale, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] -= scale * g[i];
}

void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) g[i] *= theta * m[i] * (1.0 - m[i]);
}

double sq_diff_sum_f64(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void cmul_f64(Complex* a, const Complex* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    a[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    out[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = w * a[i].real(), ai = w * a[i].imag();
    const double br = b[i].real(), bi = -b[i].imag();
    acc[i] += Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = a[i].real(), im = a[i].imag();
    out[i] += w * (re * re + im * im);
  }
}

void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Complex(r[i] * a[i].real(), r[i] * a[i].imag());
}

void scaled_real_f64(const Complex* a, double s, double* out,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i].real();
}

void scale_complex_f64(Complex* a, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    a[i] = Complex(s * a[i].real(), s * a[i].imag());
}

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len) {
  const int half = len >> 1;
  for (int start = 0; start < size; start += len) {
    for (int k = 0; k < half; ++k) {
      const Complex w = twiddle[k];
      Complex& a = data[start + k];
      Complex& b = data[start + k + half];
      const double tr = w.real() * b.real() - w.imag() * b.imag();
      const double ti = w.real() * b.imag() + w.imag() * b.real();
      b = Complex(a.real() - tr, a.imag() - ti);
      a = Complex(a.real() + tr, a.imag() + ti);
    }
  }
}

void bilinear_line_f64(const double* grid, int h, int w, double x0,
                       double y0, double dx, double dy, int count,
                       double* out) {
  for (int i = 0; i < count; ++i)
    out[i] = bilinear_one(grid, h, w, x0 + i * dx, y0 + i * dy);
}

}  // namespace ldmo::kernels::generic

namespace ldmo::kernels::detail {

const KernelTable& generic_table() {
  static const KernelTable t = {
      Backend::kGeneric,
      "generic",
      &generic::gemm_rows_f32,
      &generic::axpy_f32,
      &generic::dot_f32,
      &generic::sigmoid_affine_f64,
      &generic::cis_f64,
      &generic::resist_deriv_f64,
      &generic::add_clamp1_f64,
      &generic::add_f64,
      &generic::clamp_max_f64,
      &generic::gate_lt1_f64,
      &generic::loss_grad_f64,
      &generic::max_abs_f64,
      &generic::descend_f64,
      &generic::sigmoid_chain_f64,
      &generic::sq_diff_sum_f64,
      &generic::cmul_f64,
      &generic::cmul_to_f64,
      &generic::cmul_conj_accum_f64,
      &generic::norm_weighted_accum_f64,
      &generic::real_mul_f64,
      &generic::scaled_real_f64,
      &generic::scale_complex_f64,
      &generic::fft_pass_f64,
      &generic::bilinear_line_f64,
  };
  return t;
}

}  // namespace ldmo::kernels::detail
