// Runtime-dispatched SIMD compute kernels (`ldmo_kernels`).
//
// Every hot loop in the system — GEMM tiles, FFT butterfly passes, complex
// spectrum products, sigmoid resist evaluation, ILT gradient algebra, EPE
// line sampling — funnels through one table of function pointers selected
// once at startup from the CPU's capabilities (mirroring the `plan_for`
// FFT-plan-cache pattern: resolve once, then lock-free reads forever).
//
// Backends: a generic scalar baseline (always present, bit-identical to the
// pre-SIMD scalar code) plus AVX2 / AVX-512 / NEON translation units that
// are compiled with per-file -march flags and registered only when both the
// compiler and the running CPU support them, so one binary is safe on any
// host.
//
// Determinism contract (DESIGN.md §14): results are bit-identical within a
// backend regardless of thread count. Across backends, the ops fall in two
// classes:
//   * exact ops — elementwise arithmetic with no reassociation and no FMA
//     contraction (complex multiplies, FFT passes, GEMM forward tiles,
//     resist derivative/gate/descent, max reductions). These produce
//     bit-identical results on every backend.
//   * approximate ops — lane-parallel sum reductions (dot_f32,
//     loss_grad_f64, sq_diff_sum_f64), the vectorized exp inside
//     sigmoid_affine_f64, and the vectorized sincos inside cis_f64. These
//     differ from generic by O(1 ulp)-level rounding; tests pin per-backend
//     determinism and generic-vs-SIMD tolerances.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <string_view>

namespace ldmo::kernels {

using Complex = std::complex<double>;

enum class Backend { kGeneric = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// Lowercase stable name: "generic", "avx2", "avx512", "neon".
const char* to_string(Backend backend);

/// Parses a backend name (or "auto"). Returns false on unknown names;
/// "auto" sets `is_auto` and leaves `out` untouched.
bool parse_backend(std::string_view name, Backend& out, bool& is_auto);

/// The dispatch table. One instance per compiled backend; immutable after
/// static initialization and safe to read from any thread.
struct KernelTable {
  Backend backend;
  const char* name;

  // ---- f32 dense algebra (nn: GEMM + im2col conv) ----
  /// Rows [i_begin, i_end) of row-major C[m x n] += A[m x k] * B[k x n],
  /// cache-blocked internally. Accumulation over p runs in serial order per
  /// C element (lanes span j), so results are exact.
  void (*gemm_rows_f32)(const float* a, const float* b, float* c,
                        int i_begin, int i_end, int k, int n);
  /// y[0:n) += alpha * x[0:n). Exact.
  void (*axpy_f32)(float alpha, const float* x, float* y, int n);
  /// sum_i x[i] * y[i]. Lane-parallel accumulation: approximate class.
  float (*dot_f32)(const float* x, const float* y, int n);

  // ---- f64 elementwise (litho resist + ILT gradient algebra) ----
  /// out[i] = 1 / (1 + exp(-scale * (x[i] - shift))). Generic uses libm
  /// exp; SIMD backends use a vectorized polynomial exp: approximate class.
  void (*sigmoid_affine_f64)(const double* x, double* out, std::size_t n,
                             double scale, double shift);
  /// out[i] = cos(phase[i]) + i sin(phase[i]) — the unit phasor e^{i phi}
  /// (pupil defocus phases, any batched trig). Generic uses libm cos/sin;
  /// SIMD backends use a vectorized Cody-Waite pi/2 reduction + Taylor
  /// sincos: approximate class (~1e-13 abs vs libm for |phase| < 1e6).
  void (*cis_f64)(const double* phase, Complex* out, std::size_t n);
  /// out[i] = theta * t[i] * (1 - t[i]). Exact.
  void (*resist_deriv_f64)(const double* t, double* out, std::size_t n,
                           double theta);
  /// out[i] = min(a[i] + b[i], 1). Exact.
  void (*add_clamp1_f64)(const double* a, const double* b, double* out,
                         std::size_t n);
  /// out[i] += a[i]. Exact.
  void (*add_f64)(const double* a, double* out, std::size_t n);
  /// a[i] = min(a[i], hi). Exact.
  void (*clamp_max_f64)(double* a, std::size_t n, double hi);
  /// out[i] = (a[i] + b[i] < 1) ? 1 : 0. Exact.
  void (*gate_lt1_f64)(const double* a, const double* b, double* out,
                       std::size_t n);
  /// dldt[i] = 2 w_i (t[i] - target[i]); returns sum_i w_i (t-target)^2
  /// with w_i = weights ? weights[i] : 1. Gradient exact; returned loss is
  /// a lane-parallel reduction: approximate class.
  double (*loss_grad_f64)(const double* t, const double* target,
                          const double* weights, double* dldt, std::size_t n);
  /// max_i |x[i]|. Exact (max is associative).
  double (*max_abs_f64)(const double* x, std::size_t n);
  /// p[i] -= scale * g[i]. Exact.
  void (*descend_f64)(double* p, const double* g, double scale,
                      std::size_t n);
  /// g[i] *= theta * m[i] * (1 - m[i]) — the mask-sigmoid chain rule.
  /// Exact.
  void (*sigmoid_chain_f64)(double* g, const double* m, double theta,
                            std::size_t n);
  /// sum_i (a[i] - b[i])^2. Lane-parallel reduction: approximate class.
  double (*sq_diff_sum_f64)(const double* a, const double* b, std::size_t n);

  // ---- complex<double> spectrum ops (fft / litho aerial) ----
  /// a[i] *= b[i]. Exact (textbook complex product, no FMA).
  void (*cmul_f64)(Complex* a, const Complex* b, std::size_t n);
  /// out[i] = a[i] * b[i]. Exact.
  void (*cmul_to_f64)(const Complex* a, const Complex* b, Complex* out,
                      std::size_t n);
  /// acc[i] += (w * a[i]) * conj(b[i]). Exact.
  void (*cmul_conj_accum_f64)(Complex* acc, const Complex* a,
                              const Complex* b, double w, std::size_t n);
  /// out[i] += w * |a[i]|^2 (norm = re^2 + im^2). Exact.
  void (*norm_weighted_accum_f64)(double* out, const Complex* a, double w,
                                  std::size_t n);
  /// out[i] = r[i] * a[i] (real field times complex field). Exact.
  void (*real_mul_f64)(const double* r, const Complex* a, Complex* out,
                       std::size_t n);
  /// out[i] = s * a[i].real(). Exact.
  void (*scaled_real_f64)(const Complex* a, double s, double* out,
                          std::size_t n);
  /// a[i] *= s. Exact.
  void (*scale_complex_f64)(Complex* a, double s, std::size_t n);

  // ---- FFT radix-2 butterfly stage ----
  /// One Cooley-Tukey stage of span `len` over `size` bit-reversed points:
  /// for every block start and k in [0, len/2):
  ///   t = twiddle[k] * data[start+k+len/2];
  ///   data[start+k+len/2] = data[start+k] - t; data[start+k] += t.
  /// `twiddle` holds len/2 contiguous entries for this stage. Exact.
  void (*fft_pass_f64)(Complex* data, const Complex* twiddle, int size,
                       int len);

  // ---- metrology ----
  /// out[i] = bilinear(grid, x0 + i*dx, y0 + i*dy) for i in [0, count),
  /// with the pixel-center clamped sampling of litho::sample_bilinear.
  /// Exact (per-sample arithmetic identical across backends).
  void (*bilinear_line_f64)(const double* grid, int h, int w, double x0,
                            double y0, double dx, double dy, int count,
                            double* out);
};

/// The active table. First call resolves the backend: LDMO_BACKEND env var
/// if set (error on unsupported values), otherwise the best backend the
/// CPU supports. Subsequent calls are one atomic acquire-load. Thread-safe.
const KernelTable& table();

/// Active backend (resolves on first use, like table()).
Backend active();

/// True if `backend` was compiled into this binary.
bool compiled(Backend backend);

/// True if `backend` is compiled in AND the running CPU can execute it.
bool supported(Backend backend);

/// Best supported backend for this CPU (what "auto" resolves to).
Backend detect_best();

/// Selects a backend explicitly; throws ldmo::Error with the supported
/// list if it is not usable on this host. Intended for startup/tests —
/// switching mid-run changes kernel rounding classes between iterations.
void select(Backend backend);

/// Parses "generic" / "avx2" / "avx512" / "neon" / "auto" and selects.
/// Throws ldmo::Error on unknown or unsupported names.
void select_by_name(std::string_view name);

/// Space-separated detected CPU SIMD features ("sse2 avx avx2 avx512f ...").
std::string cpu_features();

/// Comma-separated list of backends usable on this host.
std::string supported_names();

/// Parses "--backend NAME" / "--backend=NAME" out of argv (same contract
/// as runtime::apply_threads_flag: applies the selection, compacts argv).
/// Returns the name of the backend in effect afterwards.
const char* apply_backend_flag(int& argc, char** argv);

namespace detail {
/// Per-backend tables (null when not compiled in). Exposed for tests that
/// sweep every compiled backend against the generic reference.
const KernelTable* table_for(Backend backend);
/// Test-only: clears the resolved selection so the next table() call
/// re-runs startup resolution (env var + auto-detection).
void reset_for_tests();
}  // namespace detail

}  // namespace ldmo::kernels
