// NEON kernel backend (128-bit: 2 doubles / 4 floats / 1 complex<double>).
//
// AArch64 only (NEON with float64x2 is architecturally mandatory there).
// Deliberately conservative: plain vmul/vadd/vsub — never vmla/vfma, which
// would contract to fused multiply-add and break the cross-backend
// exactness contract. Full table coverage: the exp-based sigmoid and the
// sincos phasor use the same Cody-Waite reductions as the x86 TUs (2-wide),
// the sum reductions accumulate lane-parallel (approximate class, same as
// AVX2/AVX-512), and the bilinear sampler vectorizes the coordinate math
// with scalar gathers — the per-sample arithmetic order matches generic
// exactly, keeping it in the exact class.
#include "kernels/kernels.h"

#ifdef LDMO_KERNELS_NEON

#include <arm_neon.h>

#include <algorithm>
#include <cstddef>

#include "kernels/generic_ops.h"

namespace ldmo::kernels {
namespace {

using generic::bilinear_one;

// ---- vector exp for x <= 0: same reduction/polynomial as the x86 TUs ----
inline float64x2_t exp_le0_f64x2(float64x2_t x) {
  const float64x2_t kLog2e = vdupq_n_f64(1.4426950408889634074);
  const float64x2_t kLn2Hi = vdupq_n_f64(6.93147180369123816490e-01);
  const float64x2_t kLn2Lo = vdupq_n_f64(1.90821492927058770002e-10);
  const float64x2_t n = vrndnq_f64(vmulq_f64(x, kLog2e));
  float64x2_t r = vsubq_f64(x, vmulq_f64(n, kLn2Hi));
  r = vsubq_f64(r, vmulq_f64(n, kLn2Lo));
  // Horner over Taylor coefficients 1/k!, k = 12 .. 0.
  float64x2_t p = vdupq_n_f64(2.08767569878680989792e-09);   // 1/12!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(2.50521083854417187751e-08));  // 1/11!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(2.75573192239858906526e-07));  // 1/10!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(2.75573192239858925110e-06));  // 1/9!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(2.48015873015873015873e-05));  // 1/8!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(1.98412698412698412698e-04));  // 1/7!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(1.38888888888888888889e-03));  // 1/6!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(8.33333333333333333333e-03));  // 1/5!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(4.16666666666666666667e-02));  // 1/4!
  p = vaddq_f64(vmulq_f64(p, r),
                vdupq_n_f64(1.66666666666666666667e-01));  // 1/3!
  p = vaddq_f64(vmulq_f64(p, r), vdupq_n_f64(0.5));
  p = vaddq_f64(vmulq_f64(p, r), vdupq_n_f64(1.0));
  p = vaddq_f64(vmulq_f64(p, r), vdupq_n_f64(1.0));
  // Scale by 2^n through the exponent bits; flush lanes below -708.
  const int64x2_t n64 = vcvtq_s64_f64(n);  // n integral: exact
  const int64x2_t bits =
      vshlq_n_s64(vaddq_s64(n64, vdupq_n_s64(1023)), 52);
  const float64x2_t result = vmulq_f64(p, vreinterpretq_f64_s64(bits));
  const uint64x2_t ok = vcgtq_f64(x, vdupq_n_f64(-708.0));
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(result), ok));
}

// ---- vector sincos (Cody-Waite pi/2 reduction + Taylor on [-pi/4, pi/4]),
// same constants/polynomials as the x86 TUs ----
inline void sincos_f64x2(float64x2_t x, float64x2_t* s_out,
                         float64x2_t* c_out) {
  const float64x2_t kTwoOverPi = vdupq_n_f64(6.36619772367581382433e-01);
  const float64x2_t kPio2Hi = vdupq_n_f64(1.57079632673412561417e+00);
  const float64x2_t kPio2Mid = vdupq_n_f64(6.07710050630396597660e-11);
  const float64x2_t kPio2Lo = vdupq_n_f64(2.02226624871116645580e-21);
  const float64x2_t n = vrndnq_f64(vmulq_f64(x, kTwoOverPi));
  float64x2_t r = vsubq_f64(x, vmulq_f64(n, kPio2Hi));
  r = vsubq_f64(r, vmulq_f64(n, kPio2Mid));
  r = vsubq_f64(r, vmulq_f64(n, kPio2Lo));
  const float64x2_t r2 = vmulq_f64(r, r);
  // sin(r) = r + r^3 P(r^2), Taylor through r^15.
  float64x2_t ps = vdupq_n_f64(-7.64716373181981647590e-13);   // -1/15!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(1.60590438368216145994e-10));  // 1/13!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(-2.50521083854417187751e-08));  // -1/11!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(2.75573192239858906526e-06));  // 1/9!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(-1.98412698412698412698e-04));  // -1/7!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(8.33333333333333333333e-03));  // 1/5!
  ps = vaddq_f64(vmulq_f64(ps, r2),
                 vdupq_n_f64(-1.66666666666666666667e-01));  // -1/3!
  const float64x2_t sin_r =
      vaddq_f64(r, vmulq_f64(vmulq_f64(r2, r), ps));
  // cos(r) = 1 - r^2/2 + r^4 Q(r^2), Taylor through r^14.
  float64x2_t pc = vdupq_n_f64(-1.14707455977297247139e-11);   // -1/14!
  pc = vaddq_f64(vmulq_f64(pc, r2),
                 vdupq_n_f64(2.08767569878680989792e-09));  // 1/12!
  pc = vaddq_f64(vmulq_f64(pc, r2),
                 vdupq_n_f64(-2.75573192239858906526e-07));  // -1/10!
  pc = vaddq_f64(vmulq_f64(pc, r2),
                 vdupq_n_f64(2.48015873015873015873e-05));  // 1/8!
  pc = vaddq_f64(vmulq_f64(pc, r2),
                 vdupq_n_f64(-1.38888888888888888889e-03));  // -1/6!
  pc = vaddq_f64(vmulq_f64(pc, r2),
                 vdupq_n_f64(4.16666666666666666667e-02));  // 1/4!
  const float64x2_t cos_r = vaddq_f64(
      vsubq_f64(vdupq_n_f64(1.0), vmulq_f64(r2, vdupq_n_f64(0.5))),
      vmulq_f64(vmulq_f64(r2, r2), pc));
  // Quadrant fixup from q = n mod 4:
  //   sin(x) = [ s,  c, -s, -c][q]    cos(x) = [ c, -s, -c,  s][q]
  const int64x2_t q = vcvtq_s64_f64(n);
  const int64x2_t one = vdupq_n_s64(1);
  const int64x2_t two = vdupq_n_s64(2);
  const uint64x2_t swap = vceqq_s64(vandq_s64(q, one), one);
  const uint64x2_t sin_sign = vreinterpretq_u64_s64(
      vshlq_n_s64(vandq_s64(q, two), 62));
  const uint64x2_t cos_sign = vreinterpretq_u64_s64(
      vshlq_n_s64(vandq_s64(vaddq_s64(q, one), two), 62));
  const float64x2_t s = vbslq_f64(swap, cos_r, sin_r);
  const float64x2_t c = vbslq_f64(swap, sin_r, cos_r);
  *s_out = vreinterpretq_f64_u64(
      veorq_u64(vreinterpretq_u64_f64(s), sin_sign));
  *c_out = vreinterpretq_f64_u64(
      veorq_u64(vreinterpretq_u64_f64(c), cos_sign));
}

// Packed complex product for one complex<double> in a float64x2 [re, im].
inline float64x2_t cmul_f64x2(float64x2_t a, float64x2_t b) {
  const float64x2_t ar = vdupq_laneq_f64(a, 0);
  const float64x2_t ai = vdupq_laneq_f64(a, 1);
  const float64x2_t bs = vextq_f64(b, b, 1);  // [im, re]
  const float64x2_t t1 = vmulq_f64(ar, b);    // [ar*br, ar*bi]
  const float64x2_t t2 = vmulq_f64(ai, bs);   // [ai*bi, ai*br]
  // Lane 0: t1 - t2, lane 1: t1 + t2. x + (-y) is IEEE-identical to x - y.
  const float64x2_t signs = {-1.0, 1.0};
  return vaddq_f64(t1, vmulq_f64(t2, signs));
}

constexpr int kBlock = 64;  // same cache blocking as the generic backend

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n) {
  for (int i0 = i_begin; i0 < i_end; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, i_end);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a + static_cast<std::size_t>(i) * k;
          float* crow = c + static_cast<std::size_t>(i) * n;
          int j = j0;
          for (; j + 16 <= j1; j += 16) {
            float32x4_t acc0 = vld1q_f32(crow + j);
            float32x4_t acc1 = vld1q_f32(crow + j + 4);
            float32x4_t acc2 = vld1q_f32(crow + j + 8);
            float32x4_t acc3 = vld1q_f32(crow + j + 12);
            for (int p = p0; p < p1; ++p) {
              const float32x4_t av = vdupq_n_f32(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(brow)));
              acc1 = vaddq_f32(acc1, vmulq_f32(av, vld1q_f32(brow + 4)));
              acc2 = vaddq_f32(acc2, vmulq_f32(av, vld1q_f32(brow + 8)));
              acc3 = vaddq_f32(acc3, vmulq_f32(av, vld1q_f32(brow + 12)));
            }
            vst1q_f32(crow + j, acc0);
            vst1q_f32(crow + j + 4, acc1);
            vst1q_f32(crow + j + 8, acc2);
            vst1q_f32(crow + j + 12, acc3);
          }
          for (; j + 4 <= j1; j += 4) {
            float32x4_t acc = vld1q_f32(crow + j);
            for (int p = p0; p < p1; ++p) {
              const float32x4_t av = vdupq_n_f32(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc = vaddq_f32(acc, vmulq_f32(av, vld1q_f32(brow)));
            }
            vst1q_f32(crow + j, acc);
          }
          for (int p = p0; p < p1 && j < j1; ++p) {
            const float av = arow[p];
            const float* brow = b + static_cast<std::size_t>(p) * n;
            for (int jj = j; jj < j1; ++jj) crow[jj] += av * brow[jj];
          }
        }
      }
    }
  }
}

void axpy_f32(float alpha, const float* x, float* y, int n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i,
              vaddq_f32(vld1q_f32(y + i), vmulq_f32(va, vld1q_f32(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

float dot_f32(const float* x, const float* y, int n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4)
    acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  float sum = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 1)) +
              (vgetq_lane_f32(acc, 2) + vgetq_lane_f32(acc, 3));
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void sigmoid_affine_f64(const double* x, double* out, std::size_t n,
                        double scale, double shift) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  const float64x2_t vshift = vdupq_n_f64(shift);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t z =
        vmulq_f64(vscale, vsubq_f64(vld1q_f64(x + i), vshift));
    const float64x2_t e = exp_le0_f64x2(vnegq_f64(vabsq_f64(z)));
    const float64x2_t denom = vaddq_f64(kOne, e);
    const float64x2_t pos = vdivq_f64(kOne, denom);  // z >= 0 branch
    const float64x2_t neg = vdivq_f64(e, denom);     // z <  0 branch
    const uint64x2_t take_pos = vcgeq_f64(z, vdupq_n_f64(0.0));
    vst1q_f64(out + i, vbslq_f64(take_pos, pos, neg));
  }
  if (i < n) generic::sigmoid_affine_f64(x + i, out + i, n - i, scale, shift);
}

void cis_f64(const double* phase, Complex* out, std::size_t n) {
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2, op += 4) {
    float64x2x2_t cs;
    sincos_f64x2(vld1q_f64(phase + i), &cs.val[1], &cs.val[0]);
    vst2q_f64(op, cs);  // interleaves to [c0 s0 c1 s1]
  }
  if (i < n) generic::cis_f64(phase + i, out + i, n - i);
}

void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta) {
  const float64x2_t vt = vdupq_n_f64(theta);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(t + i);
    vst1q_f64(out + i,
              vmulq_f64(vmulq_f64(vt, v), vsubq_f64(kOne, v)));
  }
  for (; i < n; ++i) out[i] = theta * t[i] * (1.0 - t[i]);
}

void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n) {
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i,
              vminq_f64(vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)),
                        kOne));
  for (; i < n; ++i) out[i] = std::min(a[i] + b[i], 1.0);
}

void add_f64(const double* a, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(out + i), vld1q_f64(a + i)));
  for (; i < n; ++i) out[i] += a[i];
}

void clamp_max_f64(double* a, std::size_t n, double hi) {
  const float64x2_t vhi = vdupq_n_f64(hi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(a + i, vminq_f64(vld1q_f64(a + i), vhi));
  for (; i < n; ++i) a[i] = std::min(a[i], hi);
}

void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t sum = vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const uint64x2_t lt = vcltq_f64(sum, kOne);
    vst1q_f64(out + i,
              vreinterpretq_f64_u64(
                  vandq_u64(lt, vreinterpretq_u64_f64(kOne))));
  }
  for (; i < n; ++i) out[i] = (a[i] + b[i] < 1.0) ? 1.0 : 0.0;
}

double loss_grad_f64(const double* t, const double* target,
                     const double* weights, double* dldt, std::size_t n) {
  const float64x2_t kTwo = vdupq_n_f64(2.0);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d =
        vsubq_f64(vld1q_f64(t + i), vld1q_f64(target + i));
    const float64x2_t w = weights ? vld1q_f64(weights + i) : kOne;
    const float64x2_t wd = vmulq_f64(w, d);
    acc = vaddq_f64(acc, vmulq_f64(wd, d));
    vst1q_f64(dldt + i, vmulq_f64(vmulq_f64(kTwo, w), d));
  }
  double loss = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) {
    const double w = weights ? weights[i] : 1.0;
    const double d = t[i] - target[i];
    loss += w * d * d;
    dldt[i] = 2.0 * w * d;
  }
  return loss;
}

double max_abs_f64(const double* x, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    acc = vmaxq_f64(acc, vabsq_f64(vld1q_f64(x + i)));
  double m = std::max(vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1));
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void descend_f64(double* p, const double* g, double scale, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(p + i, vsubq_f64(vld1q_f64(p + i),
                               vmulq_f64(vs, vld1q_f64(g + i))));
  for (; i < n; ++i) p[i] -= scale * g[i];
}

void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n) {
  const float64x2_t vt = vdupq_n_f64(theta);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t mv = vld1q_f64(m + i);
    const float64x2_t factor =
        vmulq_f64(vmulq_f64(vt, mv), vsubq_f64(kOne, mv));
    vst1q_f64(g + i, vmulq_f64(vld1q_f64(g + i), factor));
  }
  for (; i < n; ++i) g[i] *= theta * m[i] * (1.0 - m[i]);
}

double sq_diff_sum_f64(const double* a, const double* b, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    acc = vaddq_f64(acc, vmulq_f64(d, d));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void cmul_f64(Complex* a, const Complex* b, std::size_t n) {
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < n; ++i, ap += 2, bp += 2)
    vst1q_f64(ap, cmul_f64x2(vld1q_f64(ap), vld1q_f64(bp)));
}

void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double* op = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i, ap += 2, bp += 2, op += 2)
    vst1q_f64(op, cmul_f64x2(vld1q_f64(ap), vld1q_f64(bp)));
}

void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n) {
  const float64x2_t vw = vdupq_n_f64(w);
  const float64x2_t conj = {1.0, -1.0};
  double* cp = reinterpret_cast<double*>(acc);
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < n; ++i, cp += 2, ap += 2, bp += 2) {
    const float64x2_t wa = vmulq_f64(vw, vld1q_f64(ap));
    const float64x2_t bc = vmulq_f64(vld1q_f64(bp), conj);
    vst1q_f64(cp, vaddq_f64(vld1q_f64(cp), cmul_f64x2(wa, bc)));
  }
}

void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  for (std::size_t i = 0; i < n; ++i, ap += 2) {
    const double re = ap[0], im = ap[1];
    out[i] += w * (re * re + im * im);
  }
}

void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  double* op = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i, ap += 2, op += 2)
    vst1q_f64(op, vmulq_f64(vdupq_n_f64(r[i]), vld1q_f64(ap)));
}

void scaled_real_f64(const Complex* a, double s, double* out,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i].real();
}

void scale_complex_f64(Complex* a, double s, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  double* ap = reinterpret_cast<double*>(a);
  for (std::size_t i = 0; i < n; ++i, ap += 2)
    vst1q_f64(ap, vmulq_f64(vs, vld1q_f64(ap)));
}

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len) {
  double* dp = reinterpret_cast<double*>(data);
  const int half = len >> 1;
  if (half == 1) {
    for (int s = 0; s < 2 * size; s += 4) {
      const float64x2_t a = vld1q_f64(dp + s);
      const float64x2_t b = vld1q_f64(dp + s + 2);
      vst1q_f64(dp + s, vaddq_f64(a, b));
      vst1q_f64(dp + s + 2, vsubq_f64(a, b));
    }
    return;
  }
  const double* tp = reinterpret_cast<const double*>(twiddle);
  for (int start = 0; start < size; start += len) {
    double* ap = dp + 2 * start;
    double* bp = ap + 2 * half;
    for (int k = 0; k < half; ++k) {
      const float64x2_t w = vld1q_f64(tp + 2 * k);
      const float64x2_t va = vld1q_f64(ap + 2 * k);
      const float64x2_t vb = vld1q_f64(bp + 2 * k);
      const float64x2_t t = cmul_f64x2(w, vb);
      vst1q_f64(bp + 2 * k, vsubq_f64(va, t));
      vst1q_f64(ap + 2 * k, vaddq_f64(va, t));
    }
  }
}

void bilinear_line_f64(const double* grid, int h, int w, double x0,
                       double y0, double dx, double dy, int count,
                       double* out) {
  // Coordinate math and interpolation are 2-wide; the four corner loads
  // are scalar gathers. Per-sample arithmetic order matches bilinear_one
  // exactly, so this stays in the exact class.
  const float64x2_t vdx = vdupq_n_f64(dx);
  const float64x2_t vdy = vdupq_n_f64(dy);
  const float64x2_t vx0 = vdupq_n_f64(x0);
  const float64x2_t vy0 = vdupq_n_f64(y0);
  const float64x2_t kHalf = vdupq_n_f64(0.5);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  const float64x2_t kZero = vdupq_n_f64(0.0);
  const float64x2_t fxmax = vdupq_n_f64(static_cast<double>(w - 1));
  const float64x2_t fymax = vdupq_n_f64(static_cast<double>(h - 1));
  int i = 0;
  for (; i + 2 <= count; i += 2) {
    const float64x2_t iv = {static_cast<double>(i),
                            static_cast<double>(i + 1)};
    const float64x2_t px = vaddq_f64(vx0, vmulq_f64(iv, vdx));
    const float64x2_t py = vaddq_f64(vy0, vmulq_f64(iv, vdy));
    const float64x2_t fx =
        vmaxq_f64(kZero, vminq_f64(vsubq_f64(px, kHalf), fxmax));
    const float64x2_t fy =
        vmaxq_f64(kZero, vminq_f64(vsubq_f64(py, kHalf), fymax));
    // fx/fy are clamped to [0, max]: truncation equals generic's int cast.
    const int64x2_t xi = vcvtq_s64_f64(fx);
    const int64x2_t yi = vcvtq_s64_f64(fy);
    const float64x2_t tx = vsubq_f64(fx, vcvtq_f64_s64(xi));
    const float64x2_t ty = vsubq_f64(fy, vcvtq_f64_s64(yi));
    const int x0a = static_cast<int>(vgetq_lane_s64(xi, 0));
    const int x0b = static_cast<int>(vgetq_lane_s64(xi, 1));
    const int y0a = static_cast<int>(vgetq_lane_s64(yi, 0));
    const int y0b = static_cast<int>(vgetq_lane_s64(yi, 1));
    const int x1a = x0a + 1 < w ? x0a + 1 : w - 1;
    const int x1b = x0b + 1 < w ? x0b + 1 : w - 1;
    const int y1a = y0a + 1 < h ? y0a + 1 : h - 1;
    const int y1b = y0b + 1 < h ? y0b + 1 : h - 1;
    const double* r0a = grid + static_cast<std::size_t>(y0a) * w;
    const double* r0b = grid + static_cast<std::size_t>(y0b) * w;
    const double* r1a = grid + static_cast<std::size_t>(y1a) * w;
    const double* r1b = grid + static_cast<std::size_t>(y1b) * w;
    const float64x2_t g00 = {r0a[x0a], r0b[x0b]};
    const float64x2_t g01 = {r0a[x1a], r0b[x1b]};
    const float64x2_t g10 = {r1a[x0a], r1b[x0b]};
    const float64x2_t g11 = {r1a[x1a], r1b[x1b]};
    const float64x2_t one_tx = vsubq_f64(kOne, tx);
    const float64x2_t bottom =
        vaddq_f64(vmulq_f64(g00, one_tx), vmulq_f64(g01, tx));
    const float64x2_t top =
        vaddq_f64(vmulq_f64(g10, one_tx), vmulq_f64(g11, tx));
    vst1q_f64(out + i,
              vaddq_f64(vmulq_f64(bottom, vsubq_f64(kOne, ty)),
                        vmulq_f64(top, ty)));
  }
  for (; i < count; ++i)
    out[i] = bilinear_one(grid, h, w, x0 + i * dx, y0 + i * dy);
}

}  // namespace

namespace detail {

const KernelTable& neon_table() {
  static const KernelTable t = {
      Backend::kNeon,
      "neon",
      &gemm_rows_f32,
      &axpy_f32,
      &dot_f32,
      &sigmoid_affine_f64,
      &cis_f64,
      &resist_deriv_f64,
      &add_clamp1_f64,
      &add_f64,
      &clamp_max_f64,
      &gate_lt1_f64,
      &loss_grad_f64,
      &max_abs_f64,
      &descend_f64,
      &sigmoid_chain_f64,
      &sq_diff_sum_f64,
      &cmul_f64,
      &cmul_to_f64,
      &cmul_conj_accum_f64,
      &norm_weighted_accum_f64,
      &real_mul_f64,
      &scaled_real_f64,
      &scale_complex_f64,
      &fft_pass_f64,
      &bilinear_line_f64,
  };
  return t;
}

}  // namespace detail
}  // namespace ldmo::kernels

#endif  // LDMO_KERNELS_NEON
