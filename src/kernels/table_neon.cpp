// NEON kernel backend (128-bit: 2 doubles / 4 floats / 1 complex<double>).
//
// AArch64 only (NEON with float64x2 is architecturally mandatory there).
// Deliberately conservative: plain vmul/vadd/vsub — never vmla/vfma, which
// would contract to fused multiply-add and break the cross-backend
// exactness contract — and generic scalar fallbacks for the exp-based
// sigmoid, the gather-heavy bilinear sampler, and the sum reductions where
// 2-wide lanes win little.
#include "kernels/kernels.h"

#ifdef LDMO_KERNELS_NEON

#include <arm_neon.h>

#include <algorithm>
#include <cstddef>

#include "kernels/generic_ops.h"

namespace ldmo::kernels {
namespace {

// Packed complex product for one complex<double> in a float64x2 [re, im].
inline float64x2_t cmul_f64x2(float64x2_t a, float64x2_t b) {
  const float64x2_t ar = vdupq_laneq_f64(a, 0);
  const float64x2_t ai = vdupq_laneq_f64(a, 1);
  const float64x2_t bs = vextq_f64(b, b, 1);  // [im, re]
  const float64x2_t t1 = vmulq_f64(ar, b);    // [ar*br, ar*bi]
  const float64x2_t t2 = vmulq_f64(ai, bs);   // [ai*bi, ai*br]
  // Lane 0: t1 - t2, lane 1: t1 + t2. x + (-y) is IEEE-identical to x - y.
  const float64x2_t signs = {-1.0, 1.0};
  return vaddq_f64(t1, vmulq_f64(t2, signs));
}

constexpr int kBlock = 64;  // same cache blocking as the generic backend

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n) {
  for (int i0 = i_begin; i0 < i_end; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, i_end);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a + static_cast<std::size_t>(i) * k;
          float* crow = c + static_cast<std::size_t>(i) * n;
          int j = j0;
          for (; j + 16 <= j1; j += 16) {
            float32x4_t acc0 = vld1q_f32(crow + j);
            float32x4_t acc1 = vld1q_f32(crow + j + 4);
            float32x4_t acc2 = vld1q_f32(crow + j + 8);
            float32x4_t acc3 = vld1q_f32(crow + j + 12);
            for (int p = p0; p < p1; ++p) {
              const float32x4_t av = vdupq_n_f32(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(brow)));
              acc1 = vaddq_f32(acc1, vmulq_f32(av, vld1q_f32(brow + 4)));
              acc2 = vaddq_f32(acc2, vmulq_f32(av, vld1q_f32(brow + 8)));
              acc3 = vaddq_f32(acc3, vmulq_f32(av, vld1q_f32(brow + 12)));
            }
            vst1q_f32(crow + j, acc0);
            vst1q_f32(crow + j + 4, acc1);
            vst1q_f32(crow + j + 8, acc2);
            vst1q_f32(crow + j + 12, acc3);
          }
          for (; j + 4 <= j1; j += 4) {
            float32x4_t acc = vld1q_f32(crow + j);
            for (int p = p0; p < p1; ++p) {
              const float32x4_t av = vdupq_n_f32(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc = vaddq_f32(acc, vmulq_f32(av, vld1q_f32(brow)));
            }
            vst1q_f32(crow + j, acc);
          }
          for (int p = p0; p < p1 && j < j1; ++p) {
            const float av = arow[p];
            const float* brow = b + static_cast<std::size_t>(p) * n;
            for (int jj = j; jj < j1; ++jj) crow[jj] += av * brow[jj];
          }
        }
      }
    }
  }
}

void axpy_f32(float alpha, const float* x, float* y, int n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i,
              vaddq_f32(vld1q_f32(y + i), vmulq_f32(va, vld1q_f32(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta) {
  const float64x2_t vt = vdupq_n_f64(theta);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(t + i);
    vst1q_f64(out + i,
              vmulq_f64(vmulq_f64(vt, v), vsubq_f64(kOne, v)));
  }
  for (; i < n; ++i) out[i] = theta * t[i] * (1.0 - t[i]);
}

void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n) {
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i,
              vminq_f64(vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)),
                        kOne));
  for (; i < n; ++i) out[i] = std::min(a[i] + b[i], 1.0);
}

void add_f64(const double* a, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(out + i), vld1q_f64(a + i)));
  for (; i < n; ++i) out[i] += a[i];
}

void clamp_max_f64(double* a, std::size_t n, double hi) {
  const float64x2_t vhi = vdupq_n_f64(hi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(a + i, vminq_f64(vld1q_f64(a + i), vhi));
  for (; i < n; ++i) a[i] = std::min(a[i], hi);
}

void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t sum = vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const uint64x2_t lt = vcltq_f64(sum, kOne);
    vst1q_f64(out + i,
              vreinterpretq_f64_u64(
                  vandq_u64(lt, vreinterpretq_u64_f64(kOne))));
  }
  for (; i < n; ++i) out[i] = (a[i] + b[i] < 1.0) ? 1.0 : 0.0;
}

double max_abs_f64(const double* x, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    acc = vmaxq_f64(acc, vabsq_f64(vld1q_f64(x + i)));
  double m = std::max(vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1));
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void descend_f64(double* p, const double* g, double scale, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(p + i, vsubq_f64(vld1q_f64(p + i),
                               vmulq_f64(vs, vld1q_f64(g + i))));
  for (; i < n; ++i) p[i] -= scale * g[i];
}

void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n) {
  const float64x2_t vt = vdupq_n_f64(theta);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t mv = vld1q_f64(m + i);
    const float64x2_t factor =
        vmulq_f64(vmulq_f64(vt, mv), vsubq_f64(kOne, mv));
    vst1q_f64(g + i, vmulq_f64(vld1q_f64(g + i), factor));
  }
  for (; i < n; ++i) g[i] *= theta * m[i] * (1.0 - m[i]);
}

void cmul_f64(Complex* a, const Complex* b, std::size_t n) {
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < n; ++i, ap += 2, bp += 2)
    vst1q_f64(ap, cmul_f64x2(vld1q_f64(ap), vld1q_f64(bp)));
}

void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double* op = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i, ap += 2, bp += 2, op += 2)
    vst1q_f64(op, cmul_f64x2(vld1q_f64(ap), vld1q_f64(bp)));
}

void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n) {
  const float64x2_t vw = vdupq_n_f64(w);
  const float64x2_t conj = {1.0, -1.0};
  double* cp = reinterpret_cast<double*>(acc);
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < n; ++i, cp += 2, ap += 2, bp += 2) {
    const float64x2_t wa = vmulq_f64(vw, vld1q_f64(ap));
    const float64x2_t bc = vmulq_f64(vld1q_f64(bp), conj);
    vst1q_f64(cp, vaddq_f64(vld1q_f64(cp), cmul_f64x2(wa, bc)));
  }
}

void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  for (std::size_t i = 0; i < n; ++i, ap += 2) {
    const double re = ap[0], im = ap[1];
    out[i] += w * (re * re + im * im);
  }
}

void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  double* op = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i, ap += 2, op += 2)
    vst1q_f64(op, vmulq_f64(vdupq_n_f64(r[i]), vld1q_f64(ap)));
}

void scaled_real_f64(const Complex* a, double s, double* out,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i].real();
}

void scale_complex_f64(Complex* a, double s, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  double* ap = reinterpret_cast<double*>(a);
  for (std::size_t i = 0; i < n; ++i, ap += 2)
    vst1q_f64(ap, vmulq_f64(vs, vld1q_f64(ap)));
}

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len) {
  double* dp = reinterpret_cast<double*>(data);
  const int half = len >> 1;
  if (half == 1) {
    for (int s = 0; s < 2 * size; s += 4) {
      const float64x2_t a = vld1q_f64(dp + s);
      const float64x2_t b = vld1q_f64(dp + s + 2);
      vst1q_f64(dp + s, vaddq_f64(a, b));
      vst1q_f64(dp + s + 2, vsubq_f64(a, b));
    }
    return;
  }
  const double* tp = reinterpret_cast<const double*>(twiddle);
  for (int start = 0; start < size; start += len) {
    double* ap = dp + 2 * start;
    double* bp = ap + 2 * half;
    for (int k = 0; k < half; ++k) {
      const float64x2_t w = vld1q_f64(tp + 2 * k);
      const float64x2_t va = vld1q_f64(ap + 2 * k);
      const float64x2_t vb = vld1q_f64(bp + 2 * k);
      const float64x2_t t = cmul_f64x2(w, vb);
      vst1q_f64(bp + 2 * k, vsubq_f64(va, t));
      vst1q_f64(ap + 2 * k, vaddq_f64(va, t));
    }
  }
}

}  // namespace

namespace detail {

const KernelTable& neon_table() {
  static const KernelTable t = {
      Backend::kNeon,
      "neon",
      &gemm_rows_f32,
      &axpy_f32,
      &generic::dot_f32,
      &generic::sigmoid_affine_f64,
      &resist_deriv_f64,
      &add_clamp1_f64,
      &add_f64,
      &clamp_max_f64,
      &gate_lt1_f64,
      &generic::loss_grad_f64,
      &max_abs_f64,
      &descend_f64,
      &sigmoid_chain_f64,
      &generic::sq_diff_sum_f64,
      &cmul_f64,
      &cmul_to_f64,
      &cmul_conj_accum_f64,
      &norm_weighted_accum_f64,
      &real_mul_f64,
      &scaled_real_f64,
      &scale_complex_f64,
      &fft_pass_f64,
      &generic::bilinear_line_f64,
  };
  return t;
}

}  // namespace detail
}  // namespace ldmo::kernels

#endif  // LDMO_KERNELS_NEON
