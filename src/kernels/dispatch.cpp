// Backend detection and one-time dispatch-table selection.
//
// Selection mirrors the fft plan_for cache: the first table() call resolves
// the backend under a mutex (LDMO_BACKEND env override, else best CPU
// match), publishes it to telemetry, and stores the table pointer into an
// atomic; every later call is a single acquire-load. select() /
// select_by_name() re-point the table explicitly for the --backend flag and
// for per-backend tests.
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/error.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace ldmo::kernels {

namespace detail {
const KernelTable& generic_table();
#ifdef LDMO_KERNELS_AVX2
const KernelTable& avx2_table();
#endif
#ifdef LDMO_KERNELS_AVX512
const KernelTable& avx512_table();
#endif
#ifdef LDMO_KERNELS_NEON
const KernelTable& neon_table();
#endif
}  // namespace detail

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::mutex g_select_mu;

// __builtin_cpu_supports requires a literal argument, hence a macro.
#if defined(__x86_64__) || defined(__i386__)
#define LDMO_CPU_HAS(feature) (__builtin_cpu_supports(feature) != 0)
#else
#define LDMO_CPU_HAS(feature) false
#endif

bool cpu_can_run(Backend backend) {
  switch (backend) {
    case Backend::kGeneric:
      return true;
    case Backend::kAvx2:
      return LDMO_CPU_HAS("avx2");
    case Backend::kAvx512:
      // F for the 512-bit core ops, DQ for 512-bit FP logical ops.
      return LDMO_CPU_HAS("avx512f") && LDMO_CPU_HAS("avx512dq");
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

/// Publishes the selected backend to the metrics registry and to the
/// process-global report metadata so every RunReport / /varz dump records
/// which kernels actually ran.
void publish(const KernelTable& t) {
  obs::gauge("kernels.backend").set(static_cast<double>(t.backend));
  obs::RunReport::set_global_meta("kernel_backend", t.name);
  obs::RunReport::set_global_meta("kernel_cpu_features", cpu_features());
}

/// Stores `t` as the active table and publishes it. Callers hold
/// g_select_mu (or are in the pre-main single-threaded window).
void activate(const KernelTable& t) {
  publish(t);
  g_active.store(&t, std::memory_order_release);
}

const KernelTable& resolve_startup() {
  const char* env = std::getenv("LDMO_BACKEND");
  if (env != nullptr && *env != '\0') {
    Backend parsed{};
    bool is_auto = false;
    if (!parse_backend(env, parsed, is_auto))
      raise(std::string("LDMO_BACKEND: unknown backend \"") + env +
            "\" (expected generic, avx2, avx512, neon, or auto)");
    if (!is_auto) {
      if (!supported(parsed))
        raise(std::string("LDMO_BACKEND: backend \"") + env +
              "\" is not usable on this host (supported: " +
              supported_names() + ")");
      return *detail::table_for(parsed);
    }
  }
  return *detail::table_for(detect_best());
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kGeneric:
      return "generic";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, Backend& out, bool& is_auto) {
  is_auto = false;
  if (name == "auto") {
    is_auto = true;
    return true;
  }
  if (name == "generic") {
    out = Backend::kGeneric;
    return true;
  }
  if (name == "avx2") {
    out = Backend::kAvx2;
    return true;
  }
  if (name == "avx512") {
    out = Backend::kAvx512;
    return true;
  }
  if (name == "neon") {
    out = Backend::kNeon;
    return true;
  }
  return false;
}

const KernelTable& table() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::lock_guard<std::mutex> lock(g_select_mu);
  t = g_active.load(std::memory_order_relaxed);
  if (t == nullptr) {
    const KernelTable& resolved = resolve_startup();
    activate(resolved);
    t = &resolved;
  }
  return *t;
}

Backend active() { return table().backend; }

bool compiled(Backend backend) {
  return detail::table_for(backend) != nullptr;
}

bool supported(Backend backend) {
  return compiled(backend) && cpu_can_run(backend);
}

Backend detect_best() {
  if (supported(Backend::kAvx512)) return Backend::kAvx512;
  if (supported(Backend::kAvx2)) return Backend::kAvx2;
  if (supported(Backend::kNeon)) return Backend::kNeon;
  return Backend::kGeneric;
}

void select(Backend backend) {
  if (!supported(backend))
    raise(std::string("kernel backend \"") + to_string(backend) +
          "\" is not usable on this host (supported: " + supported_names() +
          ")");
  std::lock_guard<std::mutex> lock(g_select_mu);
  activate(*detail::table_for(backend));
}

void select_by_name(std::string_view name) {
  Backend parsed{};
  bool is_auto = false;
  if (!parse_backend(name, parsed, is_auto))
    raise("unknown kernel backend \"" + std::string(name) +
          "\" (expected generic, avx2, avx512, neon, or auto)");
  select(is_auto ? detect_best() : parsed);
}

std::string cpu_features() {
  std::string features;
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (LDMO_CPU_HAS("sse2")) append("sse2");
  if (LDMO_CPU_HAS("sse4.2")) append("sse4.2");
  if (LDMO_CPU_HAS("avx")) append("avx");
  if (LDMO_CPU_HAS("avx2")) append("avx2");
  if (LDMO_CPU_HAS("fma")) append("fma");
  if (LDMO_CPU_HAS("avx512f")) append("avx512f");
  if (LDMO_CPU_HAS("avx512dq")) append("avx512dq");
  if (LDMO_CPU_HAS("avx512bw")) append("avx512bw");
  if (LDMO_CPU_HAS("avx512vl")) append("avx512vl");
#elif defined(__aarch64__)
  append("neon");
#endif
  if (features.empty()) features = "none";
  return features;
}

std::string supported_names() {
  std::string names;
  for (Backend b : {Backend::kGeneric, Backend::kAvx2, Backend::kAvx512,
                    Backend::kNeon}) {
    if (!supported(b)) continue;
    if (!names.empty()) names += ", ";
    names += to_string(b);
  }
  return names;
}

const char* apply_backend_flag(int& argc, char** argv) {
  int write = 1;
  for (int read = 1; read < argc; ++read) {
    const std::string arg = argv[read];
    if (arg == "--backend") {
      require(read + 1 < argc, "--backend requires a value");
      select_by_name(argv[read + 1]);
      ++read;  // consume the value too
      continue;
    }
    if (arg.rfind("--backend=", 0) == 0) {
      select_by_name(arg.c_str() + 10);
      continue;
    }
    argv[write++] = argv[read];
  }
  argc = write;
  argv[argc] = nullptr;
  return table().name;
}

namespace detail {

const KernelTable* table_for(Backend backend) {
  switch (backend) {
    case Backend::kGeneric:
      return &generic_table();
    case Backend::kAvx2:
#ifdef LDMO_KERNELS_AVX2
      return &avx2_table();
#else
      return nullptr;
#endif
    case Backend::kAvx512:
#ifdef LDMO_KERNELS_AVX512
      return &avx512_table();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#ifdef LDMO_KERNELS_NEON
      return &neon_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

void reset_for_tests() {
  std::lock_guard<std::mutex> lock(g_select_mu);
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace detail

}  // namespace ldmo::kernels
