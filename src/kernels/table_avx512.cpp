// AVX-512 kernel backend (512-bit: 8 doubles / 16 floats / 4 complex<double>).
//
// Compiled with -mavx512f -mavx512dq -ffp-contract=off in its own
// translation unit. Requires AVX512F (core ops) + AVX512DQ (512-bit FP
// logical ops) at runtime. Remainders use AVX-512 write-masks instead of
// scalar tails wherever the op is elementwise-exact, so the whole array
// takes one code path.
//
// Exactness matches the AVX2 backend: everything except the vectorized exp
// and the lane-parallel sum reductions is a bit-identical mul/add/sub
// sequence per element (no FMA — vfmaddsub and friends are never used).
#include "kernels/kernels.h"

#ifdef LDMO_KERNELS_AVX512

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "kernels/generic_ops.h"

namespace ldmo::kernels {
namespace {

using generic::bilinear_one;

inline __mmask8 tail_mask8(std::size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

// ---- vector exp for x <= 0: same reduction/polynomial as the AVX2 TU ----
inline __m512d exp_le0_pd(__m512d x) {
  const __m512d kLog2e = _mm512_set1_pd(1.4426950408889634074);
  const __m512d kLn2Hi = _mm512_set1_pd(6.93147180369123816490e-01);
  const __m512d kLn2Lo = _mm512_set1_pd(1.90821492927058770002e-10);
  __m512d n = _mm512_roundscale_pd(
      _mm512_mul_pd(x, kLog2e),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_sub_pd(x, _mm512_mul_pd(n, kLn2Hi));
  r = _mm512_sub_pd(r, _mm512_mul_pd(n, kLn2Lo));
  __m512d p = _mm512_set1_pd(2.08767569878680989792e-09);  // 1/12!
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(2.50521083854417187751e-08));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(2.75573192239858906526e-07));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(2.75573192239858925110e-06));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(2.48015873015873015873e-05));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(1.98412698412698412698e-04));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(1.38888888888888888889e-03));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(8.33333333333333333333e-03));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(4.16666666666666666667e-02));
  p = _mm512_add_pd(_mm512_mul_pd(p, r),
                    _mm512_set1_pd(1.66666666666666666667e-01));
  p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(0.5));
  p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(1.0));
  p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(1.0));
  const __m256i n32 = _mm512_cvtpd_epi32(n);
  const __m512i n64 = _mm512_cvtepi32_epi64(n32);
  const __m512i bits =
      _mm512_slli_epi64(_mm512_add_epi64(n64, _mm512_set1_epi64(1023)), 52);
  const __m512d result = _mm512_mul_pd(p, _mm512_castsi512_pd(bits));
  const __mmask8 ok =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(-708.0), _CMP_GT_OQ);
  return _mm512_maskz_mov_pd(ok, result);
}

// ---- vector sincos: same reduction/polynomials as the AVX2 TU ----
inline void sincos_pd(__m512d x, __m512d* s_out, __m512d* c_out) {
  const __m512d kTwoOverPi = _mm512_set1_pd(6.36619772367581382433e-01);
  const __m512d kPio2Hi = _mm512_set1_pd(1.57079632673412561417e+00);
  const __m512d kPio2Mid = _mm512_set1_pd(6.07710050630396597660e-11);
  const __m512d kPio2Lo = _mm512_set1_pd(2.02226624871116645580e-21);
  const __m512d n = _mm512_roundscale_pd(
      _mm512_mul_pd(x, kTwoOverPi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_sub_pd(x, _mm512_mul_pd(n, kPio2Hi));
  r = _mm512_sub_pd(r, _mm512_mul_pd(n, kPio2Mid));
  r = _mm512_sub_pd(r, _mm512_mul_pd(n, kPio2Lo));
  const __m512d r2 = _mm512_mul_pd(r, r);
  __m512d ps = _mm512_set1_pd(-7.64716373181981647590e-13);       // -1/15!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(1.60590438368216145994e-10));  // 1/13!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(-2.50521083854417187751e-08));  // -1/11!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(2.75573192239858906526e-06));  // 1/9!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(-1.98412698412698412698e-04));  // -1/7!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(8.33333333333333333333e-03));  // 1/5!
  ps = _mm512_add_pd(_mm512_mul_pd(ps, r2),
                     _mm512_set1_pd(-1.66666666666666666667e-01));  // -1/3!
  const __m512d sin_r =
      _mm512_add_pd(r, _mm512_mul_pd(_mm512_mul_pd(r2, r), ps));
  __m512d pc = _mm512_set1_pd(-1.14707455977297247139e-11);       // -1/14!
  pc = _mm512_add_pd(_mm512_mul_pd(pc, r2),
                     _mm512_set1_pd(2.08767569878680989792e-09));  // 1/12!
  pc = _mm512_add_pd(_mm512_mul_pd(pc, r2),
                     _mm512_set1_pd(-2.75573192239858906526e-07));  // -1/10!
  pc = _mm512_add_pd(_mm512_mul_pd(pc, r2),
                     _mm512_set1_pd(2.48015873015873015873e-05));  // 1/8!
  pc = _mm512_add_pd(_mm512_mul_pd(pc, r2),
                     _mm512_set1_pd(-1.38888888888888888889e-03));  // -1/6!
  pc = _mm512_add_pd(_mm512_mul_pd(pc, r2),
                     _mm512_set1_pd(4.16666666666666666667e-02));  // 1/4!
  const __m512d cos_r = _mm512_add_pd(
      _mm512_sub_pd(_mm512_set1_pd(1.0),
                    _mm512_mul_pd(r2, _mm512_set1_pd(0.5))),
      _mm512_mul_pd(_mm512_mul_pd(r2, r2), pc));
  // Quadrant fixup from q = n mod 4:
  //   sin(x) = [ s,  c, -s, -c][q]    cos(x) = [ c, -s, -c,  s][q]
  const __m512i q = _mm512_cvtepi32_epi64(_mm512_cvtpd_epi32(n));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i two = _mm512_set1_epi64(2);
  const __mmask8 swap = _mm512_test_epi64_mask(q, one);
  const __m512d sin_sign = _mm512_castsi512_pd(
      _mm512_slli_epi64(_mm512_and_epi64(q, two), 62));
  const __m512d cos_sign = _mm512_castsi512_pd(_mm512_slli_epi64(
      _mm512_and_epi64(_mm512_add_epi64(q, one), two), 62));
  *s_out =
      _mm512_xor_pd(_mm512_mask_blend_pd(swap, sin_r, cos_r), sin_sign);
  *c_out =
      _mm512_xor_pd(_mm512_mask_blend_pd(swap, cos_r, sin_r), cos_sign);
}

// Packed complex product: lanes hold [re0, im0, re1, im1, ...].
// AVX-512 has no vaddsubpd; the masked subtract on even (real) lanes is
// the same add/sub per lane, just differently encoded.
inline __m512d cmul_pd(__m512d a, __m512d b) {
  const __m512d ar = _mm512_movedup_pd(a);
  const __m512d ai = _mm512_permute_pd(a, 0xFF);
  const __m512d bs = _mm512_permute_pd(b, 0x55);
  const __m512d t1 = _mm512_mul_pd(ar, b);
  const __m512d t2 = _mm512_mul_pd(ai, bs);
  return _mm512_mask_sub_pd(_mm512_add_pd(t1, t2), 0x55, t1, t2);
}

constexpr int kBlock = 64;  // same cache blocking as the generic backend

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n) {
  for (int i0 = i_begin; i0 < i_end; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, i_end);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const float* arow = a + static_cast<std::size_t>(i) * k;
          float* crow = c + static_cast<std::size_t>(i) * n;
          int j = j0;
          // 64-wide register tile covers a whole kBlock row in 4 zmm;
          // accumulation over p stays serial per element (bit-identical
          // to the generic p-ascending order).
          for (; j + 64 <= j1; j += 64) {
            __m512 acc0 = _mm512_loadu_ps(crow + j);
            __m512 acc1 = _mm512_loadu_ps(crow + j + 16);
            __m512 acc2 = _mm512_loadu_ps(crow + j + 32);
            __m512 acc3 = _mm512_loadu_ps(crow + j + 48);
            for (int p = p0; p < p1; ++p) {
              const __m512 av = _mm512_set1_ps(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc0 = _mm512_add_ps(acc0,
                                   _mm512_mul_ps(av, _mm512_loadu_ps(brow)));
              acc1 = _mm512_add_ps(
                  acc1, _mm512_mul_ps(av, _mm512_loadu_ps(brow + 16)));
              acc2 = _mm512_add_ps(
                  acc2, _mm512_mul_ps(av, _mm512_loadu_ps(brow + 32)));
              acc3 = _mm512_add_ps(
                  acc3, _mm512_mul_ps(av, _mm512_loadu_ps(brow + 48)));
            }
            _mm512_storeu_ps(crow + j, acc0);
            _mm512_storeu_ps(crow + j + 16, acc1);
            _mm512_storeu_ps(crow + j + 32, acc2);
            _mm512_storeu_ps(crow + j + 48, acc3);
          }
          for (; j + 16 <= j1; j += 16) {
            __m512 acc = _mm512_loadu_ps(crow + j);
            for (int p = p0; p < p1; ++p) {
              const __m512 av = _mm512_set1_ps(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc = _mm512_add_ps(acc,
                                  _mm512_mul_ps(av, _mm512_loadu_ps(brow)));
            }
            _mm512_storeu_ps(crow + j, acc);
          }
          if (j < j1) {
            const __mmask16 m =
                static_cast<__mmask16>((1u << (j1 - j)) - 1u);
            __m512 acc = _mm512_maskz_loadu_ps(m, crow + j);
            for (int p = p0; p < p1; ++p) {
              const __m512 av = _mm512_set1_ps(arow[p]);
              const float* brow = b + static_cast<std::size_t>(p) * n + j;
              acc = _mm512_add_ps(
                  acc, _mm512_mul_ps(av, _mm512_maskz_loadu_ps(m, brow)));
            }
            _mm512_mask_storeu_ps(crow + j, m, acc);
          }
        }
      }
    }
  }
}

void axpy_f32(float alpha, const float* x, float* y, int n) {
  const __m512 va = _mm512_set1_ps(alpha);
  int i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(
        y + i, _mm512_add_ps(_mm512_loadu_ps(y + i),
                             _mm512_mul_ps(va, _mm512_loadu_ps(x + i))));
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_ps(
        y + i, m,
        _mm512_add_ps(_mm512_maskz_loadu_ps(m, y + i),
                      _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, x + i))));
  }
}

float dot_f32(const float* x, const float* y, int n) {
  __m512 acc = _mm512_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16)
    acc = _mm512_add_ps(
        acc, _mm512_mul_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1u);
    acc = _mm512_add_ps(acc,
                        _mm512_mul_ps(_mm512_maskz_loadu_ps(m, x + i),
                                      _mm512_maskz_loadu_ps(m, y + i)));
  }
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, acc);
  float sum = 0.0f;
  for (int l = 0; l < 16; ++l) sum += lanes[l];
  return sum;
}

void sigmoid_affine_f64(const double* x, double* out, std::size_t n,
                        double scale, double shift) {
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512d vshift = _mm512_set1_pd(shift);
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kSign = _mm512_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d z = _mm512_mul_pd(
        vscale, _mm512_sub_pd(_mm512_loadu_pd(x + i), vshift));
    const __m512d e = exp_le0_pd(_mm512_or_pd(z, kSign));  // exp(-|z|)
    const __m512d denom = _mm512_add_pd(kOne, e);
    const __m512d pos = _mm512_div_pd(kOne, denom);
    const __m512d neg = _mm512_div_pd(e, denom);
    const __mmask8 take_pos =
        _mm512_cmp_pd_mask(z, _mm512_setzero_pd(), _CMP_GE_OQ);
    _mm512_storeu_pd(out + i, _mm512_mask_blend_pd(take_pos, neg, pos));
  }
  if (i < n) generic::sigmoid_affine_f64(x + i, out + i, n - i, scale, shift);
}

void cis_f64(const double* phase, Complex* out, std::size_t n) {
  const __m512i idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, op += 16) {
    __m512d s, c;
    sincos_pd(_mm512_loadu_pd(phase + i), &s, &c);
    _mm512_storeu_pd(op, _mm512_permutex2var_pd(c, idx_lo, s));
    _mm512_storeu_pd(op + 8, _mm512_permutex2var_pd(c, idx_hi, s));
  }
  if (i < n) generic::cis_f64(phase + i, out + i, n - i);
}

void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta) {
  const __m512d vt = _mm512_set1_pd(theta);
  const __m512d kOne = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(t + i);
    _mm512_storeu_pd(out + i, _mm512_mul_pd(_mm512_mul_pd(vt, v),
                                            _mm512_sub_pd(kOne, v)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask8(n - i);
    const __m512d v = _mm512_maskz_loadu_pd(m, t + i);
    _mm512_mask_storeu_pd(
        out + i, m,
        _mm512_mul_pd(_mm512_mul_pd(vt, v), _mm512_sub_pd(kOne, v)));
  }
}

void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n) {
  const __m512d kOne = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(out + i,
                     _mm512_min_pd(_mm512_add_pd(_mm512_loadu_pd(a + i),
                                                 _mm512_loadu_pd(b + i)),
                                   kOne));
  if (i < n) {
    const __mmask8 m = tail_mask8(n - i);
    _mm512_mask_storeu_pd(
        out + i, m,
        _mm512_min_pd(_mm512_add_pd(_mm512_maskz_loadu_pd(m, a + i),
                                    _mm512_maskz_loadu_pd(m, b + i)),
                      kOne));
  }
}

void add_f64(const double* a, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i),
                                            _mm512_loadu_pd(a + i)));
  if (i < n) {
    const __mmask8 m = tail_mask8(n - i);
    _mm512_mask_storeu_pd(
        out + i, m,
        _mm512_add_pd(_mm512_maskz_loadu_pd(m, out + i),
                      _mm512_maskz_loadu_pd(m, a + i)));
  }
}

void clamp_max_f64(double* a, std::size_t n, double hi) {
  const __m512d vhi = _mm512_set1_pd(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(a + i, _mm512_min_pd(_mm512_loadu_pd(a + i), vhi));
  if (i < n) {
    const __mmask8 m = tail_mask8(n - i);
    _mm512_mask_storeu_pd(
        a + i, m, _mm512_min_pd(_mm512_maskz_loadu_pd(m, a + i), vhi));
  }
}

void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  const __m512d kOne = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum =
        _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __mmask8 lt = _mm512_cmp_pd_mask(sum, kOne, _CMP_LT_OQ);
    _mm512_storeu_pd(out + i, _mm512_maskz_mov_pd(lt, kOne));
  }
  for (; i < n; ++i) out[i] = (a[i] + b[i] < 1.0) ? 1.0 : 0.0;
}

double loss_grad_f64(const double* t, const double* target,
                     const double* weights, double* dldt, std::size_t n) {
  const __m512d kTwo = _mm512_set1_pd(2.0);
  const __m512d kOne = _mm512_set1_pd(1.0);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(t + i), _mm512_loadu_pd(target + i));
    const __m512d w = weights ? _mm512_loadu_pd(weights + i) : kOne;
    const __m512d wd = _mm512_mul_pd(w, d);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(wd, d));
    _mm512_storeu_pd(dldt + i, _mm512_mul_pd(_mm512_mul_pd(kTwo, w), d));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double loss = 0.0;
  for (int l = 0; l < 8; ++l) loss += lanes[l];
  for (; i < n; ++i) {
    const double w = weights ? weights[i] : 1.0;
    const double d = t[i] - target[i];
    loss += w * d * d;
    dldt[i] = 2.0 * w * d;
  }
  return loss;
}

double max_abs_f64(const double* x, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm512_max_pd(acc, _mm512_abs_pd(_mm512_loadu_pd(x + i)));
  double m = _mm512_reduce_max_pd(acc);
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

void descend_f64(double* p, const double* g, double scale, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(
        p + i, _mm512_sub_pd(_mm512_loadu_pd(p + i),
                             _mm512_mul_pd(vs, _mm512_loadu_pd(g + i))));
  if (i < n) {
    const __mmask8 m = tail_mask8(n - i);
    _mm512_mask_storeu_pd(
        p + i, m,
        _mm512_sub_pd(_mm512_maskz_loadu_pd(m, p + i),
                      _mm512_mul_pd(vs, _mm512_maskz_loadu_pd(m, g + i))));
  }
}

void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n) {
  const __m512d vt = _mm512_set1_pd(theta);
  const __m512d kOne = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d mv = _mm512_loadu_pd(m + i);
    const __m512d factor = _mm512_mul_pd(_mm512_mul_pd(vt, mv),
                                         _mm512_sub_pd(kOne, mv));
    _mm512_storeu_pd(g + i, _mm512_mul_pd(_mm512_loadu_pd(g + i), factor));
  }
  for (; i < n; ++i) g[i] *= theta * m[i] * (1.0 - m[i]);
}

double sq_diff_sum_f64(const double* a, const double* b, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double sum = 0.0;
  for (int l = 0; l < 8; ++l) sum += lanes[l];
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void cmul_f64(Complex* a, const Complex* b, std::size_t n) {
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8, bp += 8)
    _mm512_storeu_pd(ap,
                     cmul_pd(_mm512_loadu_pd(ap), _mm512_loadu_pd(bp)));
  if (i < n) generic::cmul_f64(a + i, b + i, n - i);
}

void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8, bp += 8, op += 8)
    _mm512_storeu_pd(op,
                     cmul_pd(_mm512_loadu_pd(ap), _mm512_loadu_pd(bp)));
  if (i < n) generic::cmul_to_f64(a + i, b + i, out + i, n - i);
}

void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n) {
  const __m512d vw = _mm512_set1_pd(w);
  const __m512d conj_mask = _mm512_set_pd(-0.0, 0.0, -0.0, 0.0,  //
                                          -0.0, 0.0, -0.0, 0.0);
  double* cp = reinterpret_cast<double*>(acc);
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, cp += 8, ap += 8, bp += 8) {
    const __m512d wa = _mm512_mul_pd(vw, _mm512_loadu_pd(ap));
    const __m512d bc = _mm512_xor_pd(_mm512_loadu_pd(bp), conj_mask);
    _mm512_storeu_pd(cp,
                     _mm512_add_pd(_mm512_loadu_pd(cp), cmul_pd(wa, bc)));
  }
  if (i < n) generic::cmul_conj_accum_f64(acc + i, a + i, b + i, w, n - i);
}

void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n) {
  const __m512d vw = _mm512_set1_pd(w);
  // Even (re^2 + im^2) lanes of the pair-sum, gathered from two inputs.
  const __m512i even_idx =
      _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const double* ap = reinterpret_cast<const double*>(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, ap += 16) {
    const __m512d v0 = _mm512_loadu_pd(ap);
    const __m512d v1 = _mm512_loadu_pd(ap + 8);
    const __m512d sq0 = _mm512_mul_pd(v0, v0);
    const __m512d sq1 = _mm512_mul_pd(v1, v1);
    // Even lanes of sq + swapped-sq hold re^2 + im^2 in that order.
    const __m512d p0 = _mm512_add_pd(sq0, _mm512_permute_pd(sq0, 0x55));
    const __m512d p1 = _mm512_add_pd(sq1, _mm512_permute_pd(sq1, 0x55));
    const __m512d norms = _mm512_permutex2var_pd(p0, even_idx, p1);
    _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i),
                                            _mm512_mul_pd(vw, norms)));
  }
  if (i < n) generic::norm_weighted_accum_f64(out + i, a + i, w, n - i);
}

void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n) {
  const __m512i dup_lo = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
  const __m512i dup_hi = _mm512_setr_epi64(4, 4, 5, 5, 6, 6, 7, 7);
  const double* ap = reinterpret_cast<const double*>(a);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, ap += 16, op += 16) {
    const __m512d rv = _mm512_loadu_pd(r + i);
    _mm512_storeu_pd(op, _mm512_mul_pd(_mm512_permutexvar_pd(dup_lo, rv),
                                       _mm512_loadu_pd(ap)));
    _mm512_storeu_pd(op + 8,
                     _mm512_mul_pd(_mm512_permutexvar_pd(dup_hi, rv),
                                   _mm512_loadu_pd(ap + 8)));
  }
  if (i < n) generic::real_mul_f64(r + i, a + i, out + i, n - i);
}

void scaled_real_f64(const Complex* a, double s, double* out,
                     std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  const __m512i even_idx =
      _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const double* ap = reinterpret_cast<const double*>(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, ap += 16) {
    const __m512d v0 = _mm512_loadu_pd(ap);
    const __m512d v1 = _mm512_loadu_pd(ap + 8);
    const __m512d reals = _mm512_permutex2var_pd(v0, even_idx, v1);
    _mm512_storeu_pd(out + i, _mm512_mul_pd(vs, reals));
  }
  if (i < n) generic::scaled_real_f64(a + i, s, out + i, n - i);
}

void scale_complex_f64(Complex* a, double s, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  double* ap = reinterpret_cast<double*>(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4, ap += 8)
    _mm512_storeu_pd(ap, _mm512_mul_pd(vs, _mm512_loadu_pd(ap)));
  if (i < n) generic::scale_complex_f64(a + i, s, n - i);
}

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len) {
  double* dp = reinterpret_cast<double*>(data);
  const int half = len >> 1;
  if (half == 1) {
    for (int s = 0; s < 2 * size; s += 4) {
      const __m128d a = _mm_loadu_pd(dp + s);
      const __m128d b = _mm_loadu_pd(dp + s + 2);
      _mm_storeu_pd(dp + s, _mm_add_pd(a, b));
      _mm_storeu_pd(dp + s + 2, _mm_sub_pd(a, b));
    }
    return;
  }
  const double* tp = reinterpret_cast<const double*>(twiddle);
  if (half == 2) {
    // One 256-bit butterfly pair per block (AVX2 path; -mavx512f implies
    // AVX2 availability at compile time and AVX512 CPUs can execute it).
    const __m256d w = _mm256_loadu_pd(tp);
    const __m256d w_ar = _mm256_movedup_pd(w);
    const __m256d w_ai = _mm256_permute_pd(w, 0xF);
    for (int start = 0; start < size; start += len) {
      double* ap = dp + 2 * start;
      const __m256d va = _mm256_loadu_pd(ap);
      const __m256d vb = _mm256_loadu_pd(ap + 4);
      const __m256d bs = _mm256_permute_pd(vb, 0x5);
      const __m256d t = _mm256_addsub_pd(_mm256_mul_pd(w_ar, vb),
                                         _mm256_mul_pd(w_ai, bs));
      _mm256_storeu_pd(ap + 4, _mm256_sub_pd(va, t));
      _mm256_storeu_pd(ap, _mm256_add_pd(va, t));
    }
    return;
  }
  for (int start = 0; start < size; start += len) {
    double* ap = dp + 2 * start;
    double* bp = ap + 2 * half;
    for (int k = 0; k + 4 <= half; k += 4) {
      const __m512d w = _mm512_loadu_pd(tp + 2 * k);
      const __m512d va = _mm512_loadu_pd(ap + 2 * k);
      const __m512d vb = _mm512_loadu_pd(bp + 2 * k);
      const __m512d t = cmul_pd(w, vb);
      _mm512_storeu_pd(bp + 2 * k, _mm512_sub_pd(va, t));
      _mm512_storeu_pd(ap + 2 * k, _mm512_add_pd(va, t));
    }
    // half >= 4 is a multiple of 4 for radix-2 sizes: no tail.
  }
}

void bilinear_line_f64(const double* grid, int h, int w, double x0,
                       double y0, double dx, double dy, int count,
                       double* out) {
  const __m512d vdx = _mm512_set1_pd(dx);
  const __m512d vdy = _mm512_set1_pd(dy);
  const __m512d vx0 = _mm512_set1_pd(x0);
  const __m512d vy0 = _mm512_set1_pd(y0);
  const __m512d kHalf = _mm512_set1_pd(0.5);
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kZero = _mm512_setzero_pd();
  const __m512d fxmax = _mm512_set1_pd(static_cast<double>(w - 1));
  const __m512d fymax = _mm512_set1_pd(static_cast<double>(h - 1));
  const __m256i ixmax = _mm256_set1_epi32(w - 1);
  const __m256i iymax = _mm256_set1_epi32(h - 1);
  const __m256i iw = _mm256_set1_epi32(w);
  const __m256i ione = _mm256_set1_epi32(1);
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d iv =
        _mm512_set_pd(i + 7, i + 6, i + 5, i + 4, i + 3, i + 2, i + 1, i);
    const __m512d px = _mm512_add_pd(vx0, _mm512_mul_pd(iv, vdx));
    const __m512d py = _mm512_add_pd(vy0, _mm512_mul_pd(iv, vdy));
    const __m512d fx = _mm512_max_pd(
        kZero, _mm512_min_pd(_mm512_sub_pd(px, kHalf), fxmax));
    const __m512d fy = _mm512_max_pd(
        kZero, _mm512_min_pd(_mm512_sub_pd(py, kHalf), fymax));
    const __m256i x0i = _mm256_min_epi32(_mm512_cvttpd_epi32(fx), ixmax);
    const __m256i y0i = _mm256_min_epi32(_mm512_cvttpd_epi32(fy), iymax);
    const __m256i x1i =
        _mm256_min_epi32(_mm256_add_epi32(x0i, ione), ixmax);
    const __m256i y1i =
        _mm256_min_epi32(_mm256_add_epi32(y0i, ione), iymax);
    const __m512d tx = _mm512_sub_pd(fx, _mm512_cvtepi32_pd(x0i));
    const __m512d ty = _mm512_sub_pd(fy, _mm512_cvtepi32_pd(y0i));
    const __m256i row0 = _mm256_mullo_epi32(y0i, iw);
    const __m256i row1 = _mm256_mullo_epi32(y1i, iw);
    const __m512d g00 =
        _mm512_i32gather_pd(_mm256_add_epi32(row0, x0i), grid, 8);
    const __m512d g01 =
        _mm512_i32gather_pd(_mm256_add_epi32(row0, x1i), grid, 8);
    const __m512d g10 =
        _mm512_i32gather_pd(_mm256_add_epi32(row1, x0i), grid, 8);
    const __m512d g11 =
        _mm512_i32gather_pd(_mm256_add_epi32(row1, x1i), grid, 8);
    const __m512d one_tx = _mm512_sub_pd(kOne, tx);
    const __m512d bottom = _mm512_add_pd(_mm512_mul_pd(g00, one_tx),
                                         _mm512_mul_pd(g01, tx));
    const __m512d top = _mm512_add_pd(_mm512_mul_pd(g10, one_tx),
                                      _mm512_mul_pd(g11, tx));
    _mm512_storeu_pd(
        out + i, _mm512_add_pd(_mm512_mul_pd(bottom, _mm512_sub_pd(kOne, ty)),
                               _mm512_mul_pd(top, ty)));
  }
  for (; i < count; ++i)
    out[i] = bilinear_one(grid, h, w, x0 + i * dx, y0 + i * dy);
}

}  // namespace

namespace detail {

const KernelTable& avx512_table() {
  static const KernelTable t = {
      Backend::kAvx512,
      "avx512",
      &gemm_rows_f32,
      &axpy_f32,
      &dot_f32,
      &sigmoid_affine_f64,
      &cis_f64,
      &resist_deriv_f64,
      &add_clamp1_f64,
      &add_f64,
      &clamp_max_f64,
      &gate_lt1_f64,
      &loss_grad_f64,
      &max_abs_f64,
      &descend_f64,
      &sigmoid_chain_f64,
      &sq_diff_sum_f64,
      &cmul_f64,
      &cmul_to_f64,
      &cmul_conj_accum_f64,
      &norm_weighted_accum_f64,
      &real_mul_f64,
      &scaled_real_f64,
      &scale_complex_f64,
      &fft_pass_f64,
      &bilinear_line_f64,
  };
  return t;
}

}  // namespace detail
}  // namespace ldmo::kernels

#endif  // LDMO_KERNELS_AVX512
