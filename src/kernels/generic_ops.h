// Internal: generic (scalar) kernel implementations, shared as tail/
// fallback routines by the SIMD translation units. Not part of the public
// API — include kernels.h and use table() instead.
#pragma once

#include <cstddef>

#include "kernels/kernels.h"

namespace ldmo::kernels::generic {

void gemm_rows_f32(const float* a, const float* b, float* c, int i_begin,
                   int i_end, int k, int n);
void axpy_f32(float alpha, const float* x, float* y, int n);
float dot_f32(const float* x, const float* y, int n);

void sigmoid_affine_f64(const double* x, double* out, std::size_t n,
                        double scale, double shift);
void cis_f64(const double* phase, Complex* out, std::size_t n);
void resist_deriv_f64(const double* t, double* out, std::size_t n,
                      double theta);
void add_clamp1_f64(const double* a, const double* b, double* out,
                    std::size_t n);
void add_f64(const double* a, double* out, std::size_t n);
void clamp_max_f64(double* a, std::size_t n, double hi);
void gate_lt1_f64(const double* a, const double* b, double* out,
                  std::size_t n);
double loss_grad_f64(const double* t, const double* target,
                     const double* weights, double* dldt, std::size_t n);
double max_abs_f64(const double* x, std::size_t n);
void descend_f64(double* p, const double* g, double scale, std::size_t n);
void sigmoid_chain_f64(double* g, const double* m, double theta,
                       std::size_t n);
double sq_diff_sum_f64(const double* a, const double* b, std::size_t n);

void cmul_f64(Complex* a, const Complex* b, std::size_t n);
void cmul_to_f64(const Complex* a, const Complex* b, Complex* out,
                 std::size_t n);
void cmul_conj_accum_f64(Complex* acc, const Complex* a, const Complex* b,
                         double w, std::size_t n);
void norm_weighted_accum_f64(double* out, const Complex* a, double w,
                             std::size_t n);
void real_mul_f64(const double* r, const Complex* a, Complex* out,
                  std::size_t n);
void scaled_real_f64(const Complex* a, double s, double* out, std::size_t n);
void scale_complex_f64(Complex* a, double s, std::size_t n);

void fft_pass_f64(Complex* data, const Complex* twiddle, int size, int len);

void bilinear_line_f64(const double* grid, int h, int w, double x0,
                       double y0, double dx, double dy, int count,
                       double* out);

/// One bilinear sample with the clamped pixel-center convention (shared by
/// every backend's scalar tail so all backends sample identically).
inline double bilinear_one(const double* grid, int h, int w, double px,
                           double py) {
  double fx = px - 0.5;
  if (fx < 0.0) fx = 0.0;
  const double fx_max = static_cast<double>(w - 1);
  if (fx > fx_max) fx = fx_max;
  double fy = py - 0.5;
  if (fy < 0.0) fy = 0.0;
  const double fy_max = static_cast<double>(h - 1);
  if (fy > fy_max) fy = fy_max;
  int x0 = static_cast<int>(fx);
  if (x0 > w - 1) x0 = w - 1;
  int y0 = static_cast<int>(fy);
  if (y0 > h - 1) y0 = h - 1;
  const int x1 = x0 + 1 < w ? x0 + 1 : w - 1;
  const int y1 = y0 + 1 < h ? y0 + 1 : h - 1;
  const double tx = fx - x0;
  const double ty = fy - y0;
  const double* row0 = grid + static_cast<std::size_t>(y0) * w;
  const double* row1 = grid + static_cast<std::size_t>(y1) * w;
  const double bottom = row0[x0] * (1 - tx) + row0[x1] * tx;
  const double top = row1[x0] * (1 - tx) + row1[x1] * tx;
  return bottom * (1 - ty) + top * ty;
}

}  // namespace ldmo::kernels::generic
