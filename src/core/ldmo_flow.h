// The paper's LDMO flow (Fig. 2):
//
//   input layout
//     -> decomposition generation (MST + n-wise, Algorithm 1)
//     -> printability prediction (CNN scores every candidate)
//     -> ILT optimization of the best candidate, checking print violations
//        every 3 iterations
//     -> on violation: mark the candidate as seen, fall back to the next
//        best unseen candidate ("we mark the previous outputs and when
//        facing the same decomposition, we drop it")
//     -> optimized masks.
#pragma once

#include <vector>

#include "common/flow_error.h"
#include "common/timer.h"
#include "core/mask_init.h"
#include "core/predictor.h"
#include "mpl/decomposition_generator.h"
#include "opc/ilt.h"

namespace ldmo::core {

/// Learned warm-start knobs (ROADMAP item 2). Off by default: the
/// paper-faithful flow must stay bit-identical unless explicitly enabled.
struct WarmStartConfig {
  bool enabled = false;
  /// Iteration budget for seeded ILT runs. The acceptance target is >= 2x
  /// fewer iterations than the cold ilt.max_iterations (50), hence 25.
  int max_iterations = 25;
};

struct LdmoConfig {
  WarmStartConfig warm_start;
  mpl::GenerationConfig generation;
  opc::IltConfig ilt;
  /// Maximum violation-triggered fallbacks before the best remaining
  /// candidate is simply run to completion. Each fallback costs a partial
  /// ILT run, so the budget is small; the CNN ranking makes deep fallback
  /// chains unnecessary.
  int max_fallbacks = 2;
  /// When the predict stage throws (CNN inference failure, scoring fault),
  /// fall back to heuristic candidate ordering — the generation order of
  /// Algorithm 1, what a no-predictor baseline flow tries — instead of
  /// failing the run. Generalizes the paper's fallback-chain stance to
  /// predictor faults: a lost ranking degrades quality, never the request.
  bool degrade_on_predict_failure = true;
};

struct LdmoResult {
  layout::Assignment chosen;       ///< decomposition that produced the masks
  opc::IltResult ilt;              ///< final optimization result
  int candidates_generated = 0;
  int candidates_tried = 0;        ///< ILT attempts (1 + fallbacks)
  PhaseTimer timing;               ///< "generate" / "predict" / "ilt"
  double total_seconds = 0.0;
  /// True when the run's cancellation token fired (deadline or explicit
  /// cancel): the flow wound down early and masks/report are NOT populated.
  bool cancelled = false;
  /// True when a stage threw and the flow could not recover: masks/report
  /// are NOT populated and `error` records which stage broke and why.
  /// Failure is a per-run outcome, not an exception — callers holding many
  /// layouts (FlowEngine::run_many, the serving dispatchers) keep going.
  bool failed = false;
  FlowError error;  ///< populated iff `failed`
  /// True when the predict stage failed and the flow degraded to heuristic
  /// (generation-order) candidate ranking. The masks are real and
  /// violation-checked, just not CNN-ranked; degraded results are not
  /// admitted to the serve result cache.
  bool degraded = false;
  /// True when the winning ILT attempt started from a learned MaskNet seed
  /// (warm_start enabled, initializer present and its prediction succeeded
  /// for that candidate). Cold fallbacks leave this false even with the
  /// flag on.
  bool warm_started = false;
};

/// The flow pipeline (Fig. 2) over caller-owned components. FlowEngine
/// sessions and the LdmoFlow shim below both enter here; the engine
/// already binds the simulator and the ILT hyperparameters.
///
/// `token`: cooperative cancellation with deadline support. It is polled
/// between phases and, via linked per-attempt sources, once per ILT
/// iteration inside every speculative attempt, so a fired token stops the
/// flow within one iteration of mask optimization. A cancelled run returns
/// `cancelled = true` with no masks.
///
/// Fault containment: a stage that throws is caught here and returned as
/// `failed = true` with a stage-attributed FlowError (FlowException tags
/// from deep components — litho, nn — win over the observing phase). A
/// predict-stage failure degrades to heuristic ordering instead when
/// `config.degrade_on_predict_failure` is set.
///
/// `warm_start`: optional learned P-field initializer, consulted only when
/// `config.warm_start.enabled`. Seeds are computed serially (one prediction
/// per speculative attempt) before the attempts launch, so attempt results
/// stay bit-identical at any thread count; a prediction that throws
/// degrades that attempt to the paper's cold init.
LdmoResult run_ldmo_flow(const opc::IltEngine& engine,
                         PrintabilityPredictor& predictor,
                         const LdmoConfig& config,
                         const layout::Layout& layout,
                         runtime::CancellationToken token = {},
                         const MaskInitializer* warm_start = nullptr);

/// End-to-end LDMO flow bound to a caller-owned simulator and predictor.
/// Thin shim over run_ldmo_flow(); prefer core::FlowEngine for sessions
/// spanning several layouts (it owns the component stack and keeps the
/// buffer pools, kernels and FFT plans warm between runs).
class LdmoFlow {
 public:
  /// Keeps references; both must outlive the flow.
  LdmoFlow(const litho::LithoSimulator& simulator,
           PrintabilityPredictor& predictor, LdmoConfig config = {});

  LdmoResult run(const layout::Layout& layout) const;

  const LdmoConfig& config() const { return config_; }

 private:
  const litho::LithoSimulator& simulator_;
  PrintabilityPredictor& predictor_;
  LdmoConfig config_;
};

}  // namespace ldmo::core
