#include "core/baseline_flows.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "layout/raster.h"
#include "sampling/decomposition_sampling.h"

namespace ldmo::core {

TwoStageFlow::TwoStageFlow(const litho::LithoSimulator& simulator,
                           Decomposer decomposer, opc::IltConfig ilt_config)
    : simulator_(simulator),
      decomposer_(std::move(decomposer)),
      ilt_config_(ilt_config) {
  require(static_cast<bool>(decomposer_), "TwoStageFlow: null decomposer");
}

BaselineFlowResult TwoStageFlow::run(const layout::Layout& layout) const {
  Timer total;
  BaselineFlowResult result;
  result.chosen = timed_phase(result.timing, "decompose",
                              [&] { return decomposer_(layout); });
  opc::IltEngine engine(simulator_, ilt_config_);
  result.ilt = timed_phase(result.timing, "mo", [&] {
    return engine.optimize(layout, result.chosen);
  });
  result.total_seconds = total.seconds();
  return result;
}

UnifiedGreedyFlow::UnifiedGreedyFlow(const litho::LithoSimulator& simulator,
                                     UnifiedGreedyConfig config)
    : simulator_(simulator), config_(config) {
  require(config_.initial_pool >= 1, "UnifiedGreedyFlow: empty pool");
  require(config_.prune_interval >= 1,
          "UnifiedGreedyFlow: bad prune interval");
  require(config_.keep_fraction > 0.0 && config_.keep_fraction < 1.0,
          "UnifiedGreedyFlow: keep fraction out of (0,1)");
}

BaselineFlowResult UnifiedGreedyFlow::run(const layout::Layout& layout) const {
  Timer total;
  BaselineFlowResult result;
  opc::IltEngine engine(simulator_, config_.ilt);

  // Candidate pool: the generator's candidates first (the [10] framework's
  // discrete engine), supplemented with random decompositions up to
  // initial_pool — [10] explores a far larger discrete space than our
  // curated n-wise set, which is part of why its selection cost dominates.
  std::vector<layout::Assignment> candidates = timed_phase(
      result.timing, "decompose", [&] {
        mpl::GenerationResult generated =
            mpl::generate_decompositions(layout, config_.generation);
        std::vector<layout::Assignment> list =
            std::move(generated.candidates);
        if (static_cast<int>(list.size()) < config_.initial_pool) {
          for (layout::Assignment& extra : sampling::random_decompositions(
                   layout, config_.initial_pool * 2, 0xD15C0))
            if (std::find(list.begin(), list.end(), extra) == list.end() &&
                static_cast<int>(list.size()) < config_.initial_pool)
              list.push_back(std::move(extra));
        }
        return list;
      });
  const int pool_size = std::min<int>(config_.initial_pool,
                                      static_cast<int>(candidates.size()));

  struct PoolEntry {
    const layout::Assignment* assignment;
    opc::IltState state;
  };
  std::vector<PoolEntry> pool;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i)
    pool.push_back({&candidates[static_cast<std::size_t>(i)],
                    engine.init_state(
                        layout, candidates[static_cast<std::size_t>(i)])});

  const GridF target =
      layout::rasterize_target(layout, simulator_.grid_size());

  // Co-optimize, pruning on intermediate printability every prune_interval
  // iterations. Time accounting for the Fig. 1(c) split: with s candidates
  // alive, each iteration does the mask optimization of ONE eventual winner
  // ("mo") plus (s-1) candidates' worth of work whose only purpose is to
  // decide which decomposition to keep ("ds"); the lithography-simulated
  // pruning evaluations are pure "ds".
  for (int iter = 0; iter < config_.ilt.max_iterations; ++iter) {
    Timer step_timer;
    for (PoolEntry& entry : pool) engine.step(entry.state, target);
    const double step_seconds = step_timer.seconds();
    const double pool_count = static_cast<double>(pool.size());
    result.timing.add("mo", step_seconds / pool_count);
    result.timing.add("ds", step_seconds * (pool_count - 1.0) / pool_count);
    const bool prune_now = (iter + 1) % config_.prune_interval == 0 &&
                           pool.size() > 1;
    if (!prune_now) continue;
    timed_phase(result.timing, "ds", [&] {
      std::vector<double> scores;
      scores.reserve(pool.size());
      for (PoolEntry& entry : pool)
        scores.push_back(engine.evaluate(entry.state, layout).score());
      std::vector<std::size_t> order(pool.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return scores[a] < scores[b];
                       });
      const std::size_t keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(static_cast<double>(pool.size()) *
                           config_.keep_fraction)));
      std::vector<PoolEntry> survivors;
      survivors.reserve(keep);
      for (std::size_t k = 0; k < keep; ++k)
        survivors.push_back(std::move(pool[order[k]]));
      pool = std::move(survivors);
    });
  }

  // Final selection among the survivors.
  timed_phase(result.timing, "ds", [&] {
    std::size_t best = 0;
    double best_score = 0.0;
    std::vector<opc::IltResult> finals(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      finals[i] = engine.finalize(pool[i].state, layout);
      const double score = finals[i].report.score();
      if (i == 0 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    result.chosen = *pool[best].assignment;
    result.ilt = std::move(finals[best]);
  });

  result.total_seconds = total.seconds();
  return result;
}

}  // namespace ldmo::core
