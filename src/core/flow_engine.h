// Reusable LDMO session engine (the top of the memory architecture,
// DESIGN.md §9).
//
// LdmoFlow binds caller-owned components per call; FlowEngine instead OWNS
// the whole stack for a session — the lithography simulator (whose SOCS
// kernels and FFT plans come from the process-wide caches), the ILT engine,
// the printability predictor, and, implicitly, the thread workspaces its
// runs warm up. Constructing one FlowEngine and calling run()/run_many()
// across many layouts amortizes every one-time cost: kernels are built
// once, FFT plans are built once, and after the first run the buffer pools
// serve every hot-path checkout without touching the heap.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ldmo_flow.h"
#include "obs/report.h"

namespace ldmo::core {

/// Everything a session needs: the optical model plus the flow knobs.
struct FlowEngineConfig {
  litho::LithoConfig litho;
  LdmoConfig flow;
};

/// Session-owning LDMO engine: one instance, many layouts.
class FlowEngine {
 public:
  /// Per-run summary retained by the session for reporting.
  struct RunRecord {
    std::string layout;
    double score = 0.0;  ///< final Eq. 9 score of the produced masks
    double seconds = 0.0;
    int candidates_tried = 0;
  };

  /// Aggregates over every run() of this engine.
  struct SessionStats {
    int runs = 0;
    int cancelled_runs = 0;  ///< token-cancelled runs (not in history)
    int failed_runs = 0;     ///< stage-failed runs (not in history)
    int degraded_runs = 0;   ///< runs that fell back to heuristic ranking
    int warm_started_runs = 0;  ///< runs whose winning ILT attempt was seeded
    double total_seconds = 0.0;
    long long candidates_generated = 0;
    long long candidates_tried = 0;
    std::vector<RunRecord> history;  ///< in run order
  };

  /// Default predictor: RawPrintPredictor (analytic, no training needed).
  explicit FlowEngine(FlowEngineConfig config = {});

  /// Adopts a caller-trained predictor (e.g. a CnnPredictor); a null
  /// pointer falls back to the default.
  FlowEngine(FlowEngineConfig config,
             std::unique_ptr<PrintabilityPredictor> predictor);

  const FlowEngineConfig& config() const { return config_; }
  const litho::LithoSimulator& simulator() const { return simulator_; }
  const opc::IltEngine& ilt_engine() const { return engine_; }
  PrintabilityPredictor& predictor() { return *predictor_; }

  /// Installs (or clears) the learned warm-start initializer. Shared so the
  /// serving layer can point every dispatcher engine at one model; only
  /// consulted when config().flow.warm_start.enabled. The initializer's
  /// grid must match the simulator (checked here, throws ldmo::Error).
  void set_warm_start(std::shared_ptr<const MaskInitializer> warm_start);
  const MaskInitializer* warm_start() const { return warm_start_.get(); }

  /// One end-to-end LDMO run (generation -> prediction -> ILT), recorded
  /// in the session stats. `token` (optional) cancels cooperatively —
  /// deadline tokens abort the ILT loop mid-iteration; a cancelled run
  /// returns `cancelled = true`, is counted in cancelled_runs and is NOT
  /// recorded in the session history. A stage-failed run likewise returns
  /// `failed = true` (never throws), is counted in failed_runs and stays
  /// out of the history; degraded runs ARE real runs and are recorded.
  LdmoResult run(const layout::Layout& layout,
                 runtime::CancellationToken token = {});

  /// Runs every layout through the session, in order (each run already
  /// parallelizes internally). Without a token, results are index-aligned
  /// with `layouts` — failed runs occupy their slot with `failed = true`
  /// so one broken layout never shifts the alignment or stops the batch.
  /// A fired token stops the batch between runs (and aborts the in-flight
  /// run's ILT loop), returning only the completed prefix —
  /// result.size() < layouts.size() signals the truncation.
  std::vector<LdmoResult> run_many(const std::vector<layout::Layout>& layouts,
                                   runtime::CancellationToken token = {});

  /// Optional pre-touch: one throwaway blank-mask print warms the FFT
  /// plans, kernel scratch and buffer pools of the calling thread and the
  /// worker threads, so the first measured run starts at steady state.
  /// Bumps the litho.prints/litho.exposures counters like any print.
  void warmup();

  const SessionStats& session() const { return session_; }

  /// Session RunReport: flow/workspace metric snapshot (pool gauges are
  /// published first), span trees, and a "session" section with the
  /// aggregate stats and per-run history rows.
  obs::RunReport session_report() const;

  /// Renders session_report() to `path` (throws on I/O error).
  void write_session_report(const std::string& path) const;

 private:
  FlowEngineConfig config_;
  litho::LithoSimulator simulator_;
  opc::IltEngine engine_;
  std::unique_ptr<PrintabilityPredictor> predictor_;
  std::shared_ptr<const MaskInitializer> warm_start_;
  SessionStats session_;
};

}  // namespace ldmo::core
