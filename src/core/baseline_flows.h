// Baseline end-to-end flows for the Table I comparison.
//
// TwoStageFlow reproduces the conventional "[decomposer] + [6]" pipelines:
// one decomposition chosen from graph structure alone, then mask
// optimization — no printability feedback into the decomposition choice.
//
// UnifiedGreedyFlow reproduces the ICCAD'17 simultaneous framework [10]:
// a pool of decomposition candidates is co-optimized, and every few ILT
// iterations the pool is pruned by *lithography-simulated* intermediate
// printability (the expensive "decomposition selection" whose cost
// dominates the runtime breakdown in Fig. 1(c), and whose greedy early
// pruning causes the sub-optimality of Fig. 1(b)).
#pragma once

#include <functional>

#include "common/timer.h"
#include "mpl/decomposition_generator.h"
#include "opc/ilt.h"

namespace ldmo::core {

/// Result shared by the baseline flows.
struct BaselineFlowResult {
  layout::Assignment chosen;
  opc::IltResult ilt;
  double total_seconds = 0.0;
  PhaseTimer timing;  ///< "decompose" / "mo" / "ds" buckets
};

/// Two-stage flow: `decomposer` picks one assignment, ILT optimizes it.
class TwoStageFlow {
 public:
  using Decomposer =
      std::function<layout::Assignment(const layout::Layout&)>;

  TwoStageFlow(const litho::LithoSimulator& simulator, Decomposer decomposer,
               opc::IltConfig ilt_config = {});

  BaselineFlowResult run(const layout::Layout& layout) const;

 private:
  const litho::LithoSimulator& simulator_;
  Decomposer decomposer_;
  opc::IltConfig ilt_config_;
};

/// ICCAD'17-style unified flow configuration.
struct UnifiedGreedyConfig {
  mpl::GenerationConfig generation;
  opc::IltConfig ilt;
  int initial_pool = 10;    ///< candidates co-optimized at the start
  int prune_interval = 3;   ///< iterations between pruning rounds
  double keep_fraction = 0.5;  ///< pool fraction surviving each pruning
};

/// The unified simultaneous-LDMO baseline.
class UnifiedGreedyFlow {
 public:
  UnifiedGreedyFlow(const litho::LithoSimulator& simulator,
                    UnifiedGreedyConfig config = {});

  BaselineFlowResult run(const layout::Layout& layout) const;

 private:
  const litho::LithoSimulator& simulator_;
  UnifiedGreedyConfig config_;
};

}  // namespace ldmo::core
