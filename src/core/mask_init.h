// Pluggable ILT parameter-field initializer interface.
//
// The paper-faithful cold start initializes the P fields at +/- initial_p
// from the decomposition raster. A MaskInitializer supplies an alternative
// continuous initialization — in practice the learned `warmstart` MaskNet
// prediction — without the flow layer depending on the network code:
// `ldmo_warmstart` links `ldmo_core` (its harvester replays the flow), so
// the flow only ever sees this interface, injected from above.
//
// Implementations must be safe to call from multiple threads concurrently
// (the serving layer shares one instance across dispatcher engines); guard
// any stateful model internals.
#pragma once

#include <cstdint>
#include <string>

#include "common/grid.h"
#include "layout/layout.h"

namespace ldmo::core {

class MaskInitializer {
 public:
  virtual ~MaskInitializer() = default;

  /// Stable id used in reports and span attributes.
  virtual std::string name() const = 0;

  /// Fingerprint of the underlying model weights. Folded into the serve
  /// config fingerprint so cached results retire when weights are swapped.
  virtual std::uint64_t version() const = 0;

  /// Grid resolution the initializer produces; must match the simulator.
  virtual int grid_size() const = 0;

  /// Fills `p1`/`p2` (resized to grid_size x grid_size) with continuous
  /// P-field seeds for the given decomposition. Throws FlowException
  /// (stage kPredict) on failure; the flow degrades to the cold init.
  virtual void seed(const layout::Layout& layout,
                    const layout::Assignment& assignment, GridF& p1,
                    GridF& p2) const = 0;
};

}  // namespace ldmo::core
