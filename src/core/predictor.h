// Printability predictors: the learned CNN scorer and reference oracles.
//
// A predictor answers one question: "how printable will this decomposition
// be after mask optimization?" — lower score is better. The paper's
// contribution is answering it with a CNN in milliseconds instead of a
// lithography-simulation loop in seconds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"
#include "nn/resnet.h"
#include "opc/ilt.h"

namespace ldmo::core {

/// One request's scoring workload, for coalescing inference across
/// concurrent requests (serve::InferenceBatcher). Non-owning: the pointed-to
/// layout and candidate list must outlive the score_batch_multi call.
struct ScoringJob {
  const layout::Layout* layout = nullptr;
  const std::vector<layout::Assignment>* candidates = nullptr;
};

/// Interface: score a decomposition candidate (lower = better).
class PrintabilityPredictor {
 public:
  virtual ~PrintabilityPredictor() = default;
  virtual double score(const layout::Layout& layout,
                       const layout::Assignment& assignment) = 0;

  /// Scores every candidate of one layout. Equivalent to calling score()
  /// in order — and required to return bit-identical values to that loop —
  /// but implementations may batch (CNN) or parallelize (oracles) across
  /// the candidate axis. The flow's predict phase always enters here.
  virtual std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates);

  /// Scores several jobs at once — the cross-request batching hook. The
  /// result is index-aligned with `jobs`, each entry index-aligned with
  /// that job's candidates, and every score is REQUIRED to be bit-identical
  /// to a solo score_batch of the same job (the serving layer's determinism
  /// contract rests on it). The default runs the jobs in order; the CNN
  /// overrides it to share fixed-size inference batches across jobs.
  /// Implementations need not be thread-safe — the serve batcher serializes
  /// entry.
  virtual std::vector<std::vector<double>> score_batch_multi(
      const std::vector<ScoringJob>& jobs);

  virtual std::string name() const = 0;
};

/// The paper's predictor: the trained ResNet regressor on the grayscale
/// decomposition image. Scores are in z-normalized units — fine for
/// ranking, which is all the flow needs.
class CnnPredictor : public PrintabilityPredictor {
 public:
  /// Takes ownership of a (typically trained) regressor.
  explicit CnnPredictor(std::unique_ptr<nn::ResNetRegressor> network);

  double score(const layout::Layout& layout,
               const layout::Assignment& assignment) override;
  /// Batched inference: candidates are rasterized in parallel and pushed
  /// through the network in fixed-size batches (BatchNorm runs in eval
  /// mode, so batching is sample-independent and scores match score()).
  std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates) override;
  /// Cross-request batching: flattens every job's (layout, candidate)
  /// pairs into one stream and runs the same fixed-kBatch inference path
  /// as score_batch over it, so batches fill across request boundaries.
  /// Eval-mode inference is sample-independent, so each score is
  /// bit-identical to a solo run regardless of batch composition.
  std::vector<std::vector<double>> score_batch_multi(
      const std::vector<ScoringJob>& jobs) override;
  std::string name() const override { return "cnn"; }

  nn::ResNetRegressor& network() { return *network_; }

  /// Weight (de)serialization for reuse across runs.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  std::unique_ptr<nn::ResNetRegressor> network_;
};

/// Decorator that folds a weight version into the predictor identity:
/// "cnn" becomes "cnn@v3". serve::config_fingerprint hashes the predictor
/// name, so every weight promotion — the daemon's wire swap and the
/// flywheel's in-process swap — changes every cache key and stale results
/// become unreachable rather than wrong.
class VersionedPredictor : public PrintabilityPredictor {
 public:
  VersionedPredictor(std::unique_ptr<PrintabilityPredictor> inner,
                     std::uint64_t version)
      : inner_(std::move(inner)),
        version_(version),
        name_(inner_->name() + "@v" + std::to_string(version)) {}

  double score(const layout::Layout& layout,
               const layout::Assignment& assignment) override {
    return inner_->score(layout, assignment);
  }
  std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates) override {
    return inner_->score_batch(layout, candidates);
  }
  std::vector<std::vector<double>> score_batch_multi(
      const std::vector<ScoringJob>& jobs) override {
    return inner_->score_batch_multi(jobs);
  }
  std::string name() const override { return name_; }
  std::uint64_t version() const { return version_; }

 private:
  std::unique_ptr<PrintabilityPredictor> inner_;
  std::uint64_t version_ = 0;
  std::string name_;
};

/// Oracle predictor: runs the full ILT optimization and returns the true
/// Eq. 9 score. Exact but as expensive as the thing the CNN replaces —
/// used for tests and the sampling-quality experiments.
class IltOraclePredictor : public PrintabilityPredictor {
 public:
  IltOraclePredictor(const opc::IltEngine& engine,
                     litho::ScoreWeights weights = {});

  double score(const layout::Layout& layout,
               const layout::Assignment& assignment) override;
  /// Parallelizes the (expensive, independent) per-candidate ILT runs.
  std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates) override;
  std::string name() const override { return "ilt-oracle"; }

 private:
  const opc::IltEngine& engine_;
  litho::ScoreWeights weights_;
};

/// Cheap analytic predictor: prints the *unoptimized* decomposition once
/// and scores it. No learning, one lithography forward pass — a sanity
/// baseline between the CNN and the oracle.
class RawPrintPredictor : public PrintabilityPredictor {
 public:
  explicit RawPrintPredictor(const litho::LithoSimulator& simulator,
                             litho::ScoreWeights weights = {});

  double score(const layout::Layout& layout,
               const layout::Assignment& assignment) override;
  /// Parallelizes the per-candidate print+evaluate passes.
  std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates) override;
  std::string name() const override { return "raw-print"; }

 private:
  const litho::LithoSimulator& simulator_;
  litho::ScoreWeights weights_;
};

}  // namespace ldmo::core
