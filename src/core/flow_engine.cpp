#include "core/flow_engine.h"

#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/workspace.h"

namespace ldmo::core {

FlowEngine::FlowEngine(FlowEngineConfig config)
    : FlowEngine(std::move(config), nullptr) {}

FlowEngine::FlowEngine(FlowEngineConfig config,
                       std::unique_ptr<PrintabilityPredictor> predictor)
    : config_(std::move(config)),
      simulator_(config_.litho),
      engine_(simulator_, config_.flow.ilt),
      predictor_(std::move(predictor)) {
  if (!predictor_)
    predictor_ = std::make_unique<RawPrintPredictor>(simulator_);
}

void FlowEngine::set_warm_start(
    std::shared_ptr<const MaskInitializer> warm_start) {
  if (warm_start) {
    require(warm_start->grid_size() == simulator_.grid_size(),
            "FlowEngine::set_warm_start: initializer grid does not match "
            "the simulator");
  }
  warm_start_ = std::move(warm_start);
}

LdmoResult FlowEngine::run(const layout::Layout& layout,
                           runtime::CancellationToken token) {
  LdmoResult result = run_ldmo_flow(engine_, *predictor_, config_.flow,
                                    layout, token, warm_start_.get());
  if (result.cancelled) {
    session_.cancelled_runs += 1;
    return result;
  }
  if (result.failed) {
    session_.failed_runs += 1;
    return result;
  }
  if (result.degraded) session_.degraded_runs += 1;
  if (result.warm_started) session_.warm_started_runs += 1;
  session_.runs += 1;
  session_.total_seconds += result.total_seconds;
  session_.candidates_generated += result.candidates_generated;
  session_.candidates_tried += result.candidates_tried;
  session_.history.push_back({layout.name, result.ilt.report.score(),
                              result.total_seconds,
                              result.candidates_tried});
  return result;
}

std::vector<LdmoResult> FlowEngine::run_many(
    const std::vector<layout::Layout>& layouts,
    runtime::CancellationToken token) {
  obs::Span span("flow_engine.run_many");
  span.attr("layouts", static_cast<double>(layouts.size()));
  std::vector<LdmoResult> results;
  results.reserve(layouts.size());
  // Serial over layouts: each run saturates the pool with its own
  // speculative ILT attempts, and the session history stays in input
  // order. Thread workspaces warmed by run i serve run i+1 for free.
  // Cancellation stops the batch between runs; a run cancelled in flight
  // is dropped so every returned result carries finalized masks. Failed
  // runs stay in the batch (failed = true, no masks) so one broken layout
  // neither shifts index alignment nor blocks the layouts after it.
  for (const layout::Layout& layout : layouts) {
    if (token.cancelled()) break;
    LdmoResult result = run(layout, token);
    if (result.cancelled) break;
    results.push_back(std::move(result));
  }
  span.attr("completed", static_cast<double>(results.size()));
  span.attr("cancelled", results.size() < layouts.size() ? 1.0 : 0.0);
  return results;
}

void FlowEngine::warmup() {
  const int n = simulator_.grid_size();
  const GridF blank(n, n);
  (void)simulator_.print(blank, blank);
}

obs::RunReport FlowEngine::session_report() const {
  runtime::publish_workspace_metrics();
  obs::RunReport report("flow_engine");
  report.meta("predictor", predictor_->name());
  report.meta("grid_size", std::to_string(simulator_.grid_size()));
  // Copy the stats into the closure: RunReport renders lazily and may
  // outlive this engine.
  report.section("session", [stats = session_](obs::JsonWriter& w) {
    w.begin_object();
    w.kv("runs", stats.runs);
    w.kv("cancelled_runs", stats.cancelled_runs);
    w.kv("failed_runs", stats.failed_runs);
    w.kv("degraded_runs", stats.degraded_runs);
    w.kv("warm_started_runs", stats.warm_started_runs);
    w.kv("total_seconds", stats.total_seconds);
    w.kv("candidates_generated", stats.candidates_generated);
    w.kv("candidates_tried", stats.candidates_tried);
    w.key("history");
    w.begin_array();
    for (const RunRecord& r : stats.history) {
      w.begin_object();
      w.kv("layout", r.layout);
      w.kv("score", r.score);
      w.kv("seconds", r.seconds);
      w.kv("candidates_tried", r.candidates_tried);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  });
  return report;
}

void FlowEngine::write_session_report(const std::string& path) const {
  session_report().write(path);
}

}  // namespace ldmo::core
