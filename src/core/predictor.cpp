#include "core/predictor.h"

#include "common/error.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "sampling/training_set.h"

namespace ldmo::core {

CnnPredictor::CnnPredictor(std::unique_ptr<nn::ResNetRegressor> network)
    : network_(std::move(network)) {
  require(network_ != nullptr, "CnnPredictor: null network");
}

double CnnPredictor::score(const layout::Layout& layout,
                           const layout::Assignment& assignment) {
  // The paper's headline economy: each CNN inference here replaces a full
  // ILT + lithography-simulation evaluation (compare against
  // "litho.exposures" in the run report).
  static obs::Counter& inference_counter =
      obs::counter("predictor.cnn.inferences");
  inference_counter.inc();
  const nn::Tensor image = sampling::decomposition_tensor(
      layout, assignment, network_->config().input_size);
  return network_->predict_one(image);
}

void CnnPredictor::save(const std::string& path) {
  nn::save_parameters(network_->parameters(), path);
}

void CnnPredictor::load(const std::string& path) {
  nn::load_parameters(network_->parameters(), path);
}

IltOraclePredictor::IltOraclePredictor(const opc::IltEngine& engine,
                                       litho::ScoreWeights weights)
    : engine_(engine), weights_(weights) {}

double IltOraclePredictor::score(const layout::Layout& layout,
                                 const layout::Assignment& assignment) {
  static obs::Counter& oracle_counter =
      obs::counter("predictor.oracle.ilt_runs");
  oracle_counter.inc();
  return engine_.optimize(layout, assignment).report.score(weights_);
}

RawPrintPredictor::RawPrintPredictor(const litho::LithoSimulator& simulator,
                                     litho::ScoreWeights weights)
    : simulator_(simulator), weights_(weights) {}

double RawPrintPredictor::score(const layout::Layout& layout,
                                const layout::Assignment& assignment) {
  static obs::Counter& raw_counter =
      obs::counter("predictor.raw_print.evaluations");
  raw_counter.inc();
  const GridF response = simulator_.print_decomposition(layout, assignment);
  return simulator_.evaluate(response, layout).score(weights_);
}

}  // namespace ldmo::core
