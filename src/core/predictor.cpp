#include "core/predictor.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "sampling/training_set.h"

namespace ldmo::core {

std::vector<double> PrintabilityPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const layout::Assignment& candidate : candidates)
    scores.push_back(score(layout, candidate));
  return scores;
}

CnnPredictor::CnnPredictor(std::unique_ptr<nn::ResNetRegressor> network)
    : network_(std::move(network)) {
  require(network_ != nullptr, "CnnPredictor: null network");
}

double CnnPredictor::score(const layout::Layout& layout,
                           const layout::Assignment& assignment) {
  // The paper's headline economy: each CNN inference here replaces a full
  // ILT + lithography-simulation evaluation (compare against
  // "litho.exposures" in the run report).
  static obs::Counter& inference_counter =
      obs::counter("predictor.cnn.inferences");
  inference_counter.inc();
  const nn::Tensor image = sampling::decomposition_tensor(
      layout, assignment, network_->config().input_size);
  return network_->predict_one(image);
}

std::vector<double> CnnPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  static obs::Counter& inference_counter =
      obs::counter("predictor.cnn.inferences");
  inference_counter.inc(static_cast<long long>(candidates.size()));

  const int size = network_->config().input_size;
  const std::size_t pixels =
      static_cast<std::size_t>(size) * static_cast<std::size_t>(size);
  // Fixed batch size, independent of the thread count: it bounds activation
  // memory and keeps the batching identical across --threads settings.
  constexpr std::size_t kBatch = 16;
  std::vector<double> scores(candidates.size());
  for (std::size_t base = 0; base < candidates.size(); base += kBatch) {
    const std::size_t count = std::min(kBatch, candidates.size() - base);
    nn::Tensor batch({static_cast<int>(count), 1, size, size});
    // Rasterizing the decomposition images is per-candidate independent.
    runtime::parallel_for(count, [&](std::size_t i) {
      const nn::Tensor image = sampling::decomposition_tensor(
          layout, candidates[base + i], size);
      std::memcpy(batch.data() + i * pixels, image.data(),
                  pixels * sizeof(float));
    });
    const nn::Tensor out = network_->forward(batch, /*training=*/false);
    for (std::size_t i = 0; i < count; ++i)
      scores[base + i] = static_cast<double>(out[i]);
  }
  return scores;
}

void CnnPredictor::save(const std::string& path) {
  nn::save_parameters(network_->parameters(), path);
}

void CnnPredictor::load(const std::string& path) {
  nn::load_parameters(network_->parameters(), path);
}

IltOraclePredictor::IltOraclePredictor(const opc::IltEngine& engine,
                                       litho::ScoreWeights weights)
    : engine_(engine), weights_(weights) {}

double IltOraclePredictor::score(const layout::Layout& layout,
                                 const layout::Assignment& assignment) {
  static obs::Counter& oracle_counter =
      obs::counter("predictor.oracle.ilt_runs");
  oracle_counter.inc();
  return engine_.optimize(layout, assignment).report.score(weights_);
}

std::vector<double> IltOraclePredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  static obs::Counter& oracle_counter =
      obs::counter("predictor.oracle.ilt_runs");
  oracle_counter.inc(static_cast<long long>(candidates.size()));
  std::vector<double> scores(candidates.size());
  runtime::parallel_for(candidates.size(), [&](std::size_t i) {
    scores[i] =
        engine_.optimize(layout, candidates[i]).report.score(weights_);
  });
  return scores;
}

RawPrintPredictor::RawPrintPredictor(const litho::LithoSimulator& simulator,
                                     litho::ScoreWeights weights)
    : simulator_(simulator), weights_(weights) {}

double RawPrintPredictor::score(const layout::Layout& layout,
                                const layout::Assignment& assignment) {
  static obs::Counter& raw_counter =
      obs::counter("predictor.raw_print.evaluations");
  raw_counter.inc();
  const GridF response = simulator_.print_decomposition(layout, assignment);
  return simulator_.evaluate(response, layout).score(weights_);
}

std::vector<double> RawPrintPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  static obs::Counter& raw_counter =
      obs::counter("predictor.raw_print.evaluations");
  raw_counter.inc(static_cast<long long>(candidates.size()));
  std::vector<double> scores(candidates.size());
  runtime::parallel_for(candidates.size(), [&](std::size_t i) {
    const GridF response =
        simulator_.print_decomposition(layout, candidates[i]);
    scores[i] = simulator_.evaluate(response, layout).score(weights_);
  });
  return scores;
}

}  // namespace ldmo::core
