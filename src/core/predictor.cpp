#include "core/predictor.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/failpoint.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "sampling/training_set.h"

namespace ldmo::core {

std::vector<double> PrintabilityPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const layout::Assignment& candidate : candidates)
    scores.push_back(score(layout, candidate));
  return scores;
}

std::vector<std::vector<double>> PrintabilityPredictor::score_batch_multi(
    const std::vector<ScoringJob>& jobs) {
  std::vector<std::vector<double>> results;
  results.reserve(jobs.size());
  for (const ScoringJob& job : jobs) {
    require(job.layout != nullptr && job.candidates != nullptr,
            "score_batch_multi: null job");
    results.push_back(score_batch(*job.layout, *job.candidates));
  }
  return results;
}

CnnPredictor::CnnPredictor(std::unique_ptr<nn::ResNetRegressor> network)
    : network_(std::move(network)) {
  require(network_ != nullptr, "CnnPredictor: null network");
}

double CnnPredictor::score(const layout::Layout& layout,
                           const layout::Assignment& assignment) {
  // The paper's headline economy: each CNN inference here replaces a full
  // ILT + lithography-simulation evaluation (compare against
  // "litho.exposures" in the run report).
  static obs::Counter& inference_counter =
      obs::counter("predictor.cnn.inferences");
  inference_counter.inc();
  const nn::Tensor image = sampling::decomposition_tensor(
      layout, assignment, network_->config().input_size);
  return network_->predict_one(image);
}

std::vector<double> CnnPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  // One-job case of the multi path; the chunking is identical either way.
  return score_batch_multi({{&layout, &candidates}}).front();
}

std::vector<std::vector<double>> CnnPredictor::score_batch_multi(
    const std::vector<ScoringJob>& jobs) {
  static obs::Counter& inference_counter =
      obs::counter("predictor.cnn.inferences");
  fail::maybe_fail("predictor.score", FlowStage::kPredict);

  const int size = network_->config().input_size;
  const std::size_t pixels =
      static_cast<std::size_t>(size) * static_cast<std::size_t>(size);

  // Flatten every job's (layout, candidate) pairs into one stream so
  // inference batches fill across request boundaries.
  struct Item {
    const layout::Layout* layout;
    const layout::Assignment* candidate;
    double* slot;
  };
  std::vector<std::vector<double>> results(jobs.size());
  std::vector<Item> items;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    require(jobs[j].layout != nullptr && jobs[j].candidates != nullptr,
            "CnnPredictor::score_batch_multi: null job");
    results[j].resize(jobs[j].candidates->size());
    for (std::size_t c = 0; c < jobs[j].candidates->size(); ++c)
      items.push_back({jobs[j].layout, &(*jobs[j].candidates)[c],
                       &results[j][c]});
  }
  inference_counter.inc(static_cast<long long>(items.size()));

  // Fixed batch size, independent of the thread count AND of how requests
  // were coalesced: it bounds activation memory, and eval-mode inference is
  // sample-independent, so each score is bit-identical however the stream
  // is chunked (the serving determinism contract).
  constexpr std::size_t kBatch = 16;
  for (std::size_t base = 0; base < items.size(); base += kBatch) {
    const std::size_t count = std::min(kBatch, items.size() - base);
    nn::Tensor batch({static_cast<int>(count), 1, size, size});
    // Rasterizing the decomposition images is per-candidate independent.
    runtime::parallel_for(count, [&](std::size_t i) {
      const Item& item = items[base + i];
      const nn::Tensor image = sampling::decomposition_tensor(
          *item.layout, *item.candidate, size);
      std::memcpy(batch.data() + i * pixels, image.data(),
                  pixels * sizeof(float));
    });
    const nn::Tensor out = network_->forward(batch, /*training=*/false);
    for (std::size_t i = 0; i < count; ++i)
      *items[base + i].slot = static_cast<double>(out[i]);
  }
  return results;
}

void CnnPredictor::save(const std::string& path) {
  nn::save_parameters(network_->parameters(), path);
}

void CnnPredictor::load(const std::string& path) {
  nn::load_parameters(network_->parameters(), path);
}

IltOraclePredictor::IltOraclePredictor(const opc::IltEngine& engine,
                                       litho::ScoreWeights weights)
    : engine_(engine), weights_(weights) {}

double IltOraclePredictor::score(const layout::Layout& layout,
                                 const layout::Assignment& assignment) {
  static obs::Counter& oracle_counter =
      obs::counter("predictor.oracle.ilt_runs");
  oracle_counter.inc();
  return engine_.optimize(layout, assignment).report.score(weights_);
}

std::vector<double> IltOraclePredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  static obs::Counter& oracle_counter =
      obs::counter("predictor.oracle.ilt_runs");
  oracle_counter.inc(static_cast<long long>(candidates.size()));
  std::vector<double> scores(candidates.size());
  runtime::parallel_for(candidates.size(), [&](std::size_t i) {
    scores[i] =
        engine_.optimize(layout, candidates[i]).report.score(weights_);
  });
  return scores;
}

RawPrintPredictor::RawPrintPredictor(const litho::LithoSimulator& simulator,
                                     litho::ScoreWeights weights)
    : simulator_(simulator), weights_(weights) {}

double RawPrintPredictor::score(const layout::Layout& layout,
                                const layout::Assignment& assignment) {
  static obs::Counter& raw_counter =
      obs::counter("predictor.raw_print.evaluations");
  raw_counter.inc();
  const GridF response = simulator_.print_decomposition(layout, assignment);
  return simulator_.evaluate(response, layout).score(weights_);
}

std::vector<double> RawPrintPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  static obs::Counter& raw_counter =
      obs::counter("predictor.raw_print.evaluations");
  raw_counter.inc(static_cast<long long>(candidates.size()));
  fail::maybe_fail("predictor.score", FlowStage::kPredict);
  std::vector<double> scores(candidates.size());
  runtime::parallel_for(candidates.size(), [&](std::size_t i) {
    const GridF response =
        simulator_.print_decomposition(layout, candidates[i]);
    scores[i] = simulator_.evaluate(response, layout).score(weights_);
  });
  return scores;
}

}  // namespace ldmo::core
