#include "core/ldmo_flow.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldmo::core {

LdmoFlow::LdmoFlow(const litho::LithoSimulator& simulator,
                   PrintabilityPredictor& predictor, LdmoConfig config)
    : simulator_(simulator), predictor_(predictor), config_(config) {
  require(config_.max_fallbacks >= 0, "LdmoFlow: negative fallback budget");
}

LdmoResult LdmoFlow::run(const layout::Layout& layout) const {
  static obs::Counter& runs_counter = obs::counter("flow.runs");
  static obs::Counter& generated_counter =
      obs::counter("flow.candidates_generated");
  static obs::Counter& predicted_counter =
      obs::counter("flow.candidates_predicted");
  static obs::Counter& tried_counter = obs::counter("flow.candidates_tried");
  static obs::Counter& fallback_counter = obs::counter("flow.fallbacks");
  static obs::Counter& exhausted_counter =
      obs::counter("flow.fallback_budget_exhausted");
  runs_counter.inc();

  obs::Span run_span("ldmo.run");
  run_span.attr("layout", layout.name);
  run_span.attr("predictor", predictor_.name());

  Timer total_timer;
  LdmoResult result;
  opc::IltEngine engine(simulator_, config_.ilt);

  // 1. Decomposition generation.
  const mpl::GenerationResult generated = timed_phase(
      result.timing, "generate",
      [&] { return mpl::generate_decompositions(layout, config_.generation); });
  result.candidates_generated =
      static_cast<int>(generated.candidates.size());
  generated_counter.inc(result.candidates_generated);

  // 2. Printability prediction: rank every candidate, best (lowest) first.
  std::vector<double> scores;
  const std::vector<std::size_t> order = timed_phase(
      result.timing, "predict", [&] {
        scores.reserve(generated.candidates.size());
        for (const layout::Assignment& candidate : generated.candidates)
          scores.push_back(predictor_.score(layout, candidate));
        predicted_counter.inc(static_cast<long long>(scores.size()));
        std::vector<std::size_t> idx(generated.candidates.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                     std::size_t b) {
          return scores[a] < scores[b];
        });
        return idx;
      });

  // 3. ILT with violation fallback. Previously tried candidates are
  // "marked" by walking the ranked order; the final attempt runs without
  // the abort so the flow always produces masks.
  const int attempts = std::min<int>(
      config_.max_fallbacks + 1, static_cast<int>(order.size()));
  timed_phase(result.timing, "ilt", [&] {
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const layout::Assignment& candidate =
          generated.candidates[order[static_cast<std::size_t>(attempt)]];
      const bool last_attempt = attempt + 1 == attempts;
      obs::Span attempt_span("ilt.attempt");
      attempt_span.attr("attempt", attempt);
      attempt_span.attr("candidate_rank", attempt);
      attempt_span.attr("predicted_score",
                        scores[order[static_cast<std::size_t>(attempt)]]);
      attempt_span.attr("abort_enabled", last_attempt ? 0.0 : 1.0);
      opc::IltResult ilt = engine.optimize(
          layout, candidate, /*abort_on_violation=*/!last_attempt);
      ++result.candidates_tried;
      tried_counter.inc();
      attempt_span.attr("iterations_run", ilt.iterations_run);
      attempt_span.attr("aborted", ilt.aborted_on_violation ? 1.0 : 0.0);
      if (!ilt.aborted_on_violation) {
        attempt_span.attr("actual_score", ilt.report.score());
        result.chosen = candidate;
        result.ilt = std::move(ilt);
        return;
      }
      fallback_counter.inc();
      attempt_span.attr("fallback_reason", std::string("print_violation"));
      if (attempt + 2 == attempts) exhausted_counter.inc();
      log_debug("LdmoFlow: candidate ", attempt,
                " aborted on print violation, falling back");
    }
    LDMO_ASSERT(false);  // the last attempt never aborts
  });

  result.total_seconds = total_timer.seconds();
  run_span.attr("candidates_generated", result.candidates_generated);
  run_span.attr("candidates_tried", result.candidates_tried);
  run_span.attr("fallbacks", result.candidates_tried - 1);
  run_span.attr("final_score", result.ilt.report.score());
  run_span.attr("final_epe_violations", result.ilt.report.epe.violation_count);
  return result;
}

}  // namespace ldmo::core
