#include "core/ldmo_flow.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/log.h"

namespace ldmo::core {

LdmoFlow::LdmoFlow(const litho::LithoSimulator& simulator,
                   PrintabilityPredictor& predictor, LdmoConfig config)
    : simulator_(simulator), predictor_(predictor), config_(config) {
  require(config_.max_fallbacks >= 0, "LdmoFlow: negative fallback budget");
}

LdmoResult LdmoFlow::run(const layout::Layout& layout) const {
  Timer total_timer;
  LdmoResult result;
  opc::IltEngine engine(simulator_, config_.ilt);

  // 1. Decomposition generation.
  const mpl::GenerationResult generated = timed_phase(
      result.timing, "generate",
      [&] { return mpl::generate_decompositions(layout, config_.generation); });
  result.candidates_generated =
      static_cast<int>(generated.candidates.size());

  // 2. Printability prediction: rank every candidate, best (lowest) first.
  const std::vector<std::size_t> order = timed_phase(
      result.timing, "predict", [&] {
        std::vector<double> scores;
        scores.reserve(generated.candidates.size());
        for (const layout::Assignment& candidate : generated.candidates)
          scores.push_back(predictor_.score(layout, candidate));
        std::vector<std::size_t> idx(generated.candidates.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                     std::size_t b) {
          return scores[a] < scores[b];
        });
        return idx;
      });

  // 3. ILT with violation fallback. Previously tried candidates are
  // "marked" by walking the ranked order; the final attempt runs without
  // the abort so the flow always produces masks.
  const int attempts = std::min<int>(
      config_.max_fallbacks + 1, static_cast<int>(order.size()));
  timed_phase(result.timing, "ilt", [&] {
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const layout::Assignment& candidate =
          generated.candidates[order[static_cast<std::size_t>(attempt)]];
      const bool last_attempt = attempt + 1 == attempts;
      opc::IltResult ilt = engine.optimize(
          layout, candidate, /*abort_on_violation=*/!last_attempt);
      ++result.candidates_tried;
      if (!ilt.aborted_on_violation) {
        result.chosen = candidate;
        result.ilt = std::move(ilt);
        return;
      }
      log_debug("LdmoFlow: candidate ", attempt,
                " aborted on print violation, falling back");
    }
    LDMO_ASSERT(false);  // the last attempt never aborts
  });

  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace ldmo::core
