#include "core/ldmo_flow.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"

namespace ldmo::core {

LdmoFlow::LdmoFlow(const litho::LithoSimulator& simulator,
                   PrintabilityPredictor& predictor, LdmoConfig config)
    : simulator_(simulator), predictor_(predictor), config_(config) {
  require(config_.max_fallbacks >= 0, "LdmoFlow: negative fallback budget");
}

LdmoResult LdmoFlow::run(const layout::Layout& layout) const {
  return run_ldmo_flow(opc::IltEngine(simulator_, config_.ilt), predictor_,
                       config_, layout);
}

LdmoResult run_ldmo_flow(const opc::IltEngine& engine,
                         PrintabilityPredictor& predictor,
                         const LdmoConfig& config,
                         const layout::Layout& layout,
                         runtime::CancellationToken token,
                         const MaskInitializer* warm_start) {
  static obs::Counter& runs_counter = obs::counter("flow.runs");
  static obs::Counter& generated_counter =
      obs::counter("flow.candidates_generated");
  static obs::Counter& predicted_counter =
      obs::counter("flow.candidates_predicted");
  static obs::Counter& tried_counter = obs::counter("flow.candidates_tried");
  static obs::Counter& fallback_counter = obs::counter("flow.fallbacks");
  static obs::Counter& exhausted_counter =
      obs::counter("flow.fallback_budget_exhausted");
  static obs::Counter& cancelled_counter = obs::counter("flow.cancelled");
  static obs::Counter& degraded_counter = obs::counter("flow.degraded");
  runs_counter.inc();

  obs::Span run_span("ldmo.run");
  run_span.attr("layout", layout.name);
  run_span.attr("predictor", predictor.name());

  Timer total_timer;
  LdmoResult result;
  const auto cancelled_result = [&]() -> LdmoResult& {
    result.cancelled = true;
    result.total_seconds = total_timer.seconds();
    cancelled_counter.inc();
    run_span.attr("cancelled", 1.0);
    return result;
  };
  // A stage that throws becomes a per-run outcome: the error is recorded
  // with its stage (FlowException tags from deep components win over the
  // phase that observed the throw) and the run returns failed, not
  // std::terminate — the serving layer's whole fault model rests on this.
  const auto failed_result = [&](FlowError error) -> LdmoResult& {
    result.failed = true;
    result.error = std::move(error);
    result.total_seconds = total_timer.seconds();
    obs::counter(std::string("flow.errors.") + stage_name(result.error.stage))
        .inc();
    run_span.attr("error", result.error.message);
    run_span.attr("error_stage", stage_name(result.error.stage));
    log_warn("LdmoFlow: run failed in stage ",
             stage_name(result.error.stage), ": ", result.error.message);
    return result;
  };
  const auto stage_error = [](const std::exception& e,
                              FlowStage observed_stage) -> FlowError {
    if (const auto* tagged = dynamic_cast<const FlowException*>(&e))
      return tagged->error();
    return {observed_stage, e.what()};
  };

  if (token.cancelled()) return cancelled_result();

  // 1. Decomposition generation.
  mpl::GenerationResult generated;
  try {
    generated = timed_phase(result.timing, "generate", [&] {
      return mpl::generate_decompositions(layout, config.generation);
    });
  } catch (const std::exception& e) {
    return failed_result(stage_error(e, FlowStage::kDecompose));
  }
  result.candidates_generated =
      static_cast<int>(generated.candidates.size());
  generated_counter.inc(result.candidates_generated);
  if (token.cancelled()) return cancelled_result();

  // 2. Printability prediction: rank every candidate, best (lowest) first.
  // score_batch lets the predictor batch (CNN) or parallelize (oracles)
  // across candidates; its contract is bit-identical scores to a serial
  // score() loop, so the ranking is thread-count independent.
  //
  // A throwing predictor degrades (by default) to the generation order of
  // Algorithm 1 — the ranking a no-predictor baseline walks — so a scoring
  // fault costs ranking quality, not the request. The ILT violation
  // fallback chain below still guards the final masks either way.
  std::vector<double> scores;
  std::vector<std::size_t> order;
  try {
    order = timed_phase(result.timing, "predict", [&] {
      scores = predictor.score_batch(layout, generated.candidates);
      predicted_counter.inc(static_cast<long long>(scores.size()));
      std::vector<std::size_t> idx(generated.candidates.size());
      std::iota(idx.begin(), idx.end(), 0);
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                   std::size_t b) {
        return scores[a] < scores[b];
      });
      return idx;
    });
  } catch (const std::exception& e) {
    if (!config.degrade_on_predict_failure)
      return failed_result(stage_error(e, FlowStage::kPredict));
    const FlowError error = stage_error(e, FlowStage::kPredict);
    result.degraded = true;
    degraded_counter.inc();
    obs::counter(std::string("flow.errors.") + stage_name(error.stage))
        .inc();
    run_span.attr("degraded", 1.0);
    run_span.attr("degraded_reason", error.message);
    log_warn("LdmoFlow: predict stage failed (", error.message,
             "), degrading to generation-order candidate ranking");
    scores.assign(generated.candidates.size(), 0.0);
    order.resize(generated.candidates.size());
    std::iota(order.begin(), order.end(), 0);
  }
  if (token.cancelled()) return cancelled_result();

  // 3. ILT with violation fallback, run speculatively: every attempt the
  // serial fallback chain *could* reach is launched as a task, and the
  // winner is the best-ranked attempt that finished without aborting —
  // exactly the candidate the serial chain would have settled on, so
  // masks and scores are identical at any thread count. Attempts ranked
  // below an established winner are cancelled (if running) or skipped
  // (if unstarted); with --threads 1 the tasks execute inline in rank
  // order and the chain degenerates to the serial walk, speculating on
  // nothing. The final attempt runs without the violation abort so the
  // flow always produces masks.
  const int attempts = std::min<int>(
      config.max_fallbacks + 1, static_cast<int>(order.size()));

  // 3a. Learned warm-start seeds (ROADMAP item 2): one MaskNet prediction
  // per speculative attempt, computed serially before the attempts launch —
  // the model forward caches activations and is guarded by a mutex, so
  // predicting inside the attempt tasks would serialize them anyway, and
  // the serial order keeps results bit-identical at any thread count. A
  // prediction that throws (model fault, warmstart.predict failpoint)
  // degrades that attempt to the paper's cold init.
  const bool want_warm = config.warm_start.enabled && warm_start != nullptr;
  std::vector<opc::IltState> seeds;  // only p1/p2 are used
  std::vector<char> seeded(static_cast<std::size_t>(attempts), 0);
  if (want_warm) {
    static obs::Counter& predictions_counter =
        obs::counter("warmstart.predictions");
    static obs::Counter& predict_error_counter =
        obs::counter("warmstart.predict_errors");
    seeds.resize(static_cast<std::size_t>(attempts));
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const std::size_t rank = static_cast<std::size_t>(attempt);
      try {
        warm_start->seed(layout, generated.candidates[order[rank]],
                         seeds[rank].p1, seeds[rank].p2);
        predictions_counter.inc();
        seeded[rank] = 1;
      } catch (const std::exception& e) {
        predict_error_counter.inc();
        log_warn("LdmoFlow: warm-start prediction failed for attempt ",
                 attempt, " (", e.what(), "), using cold init");
      }
    }
    obs::counter("warmstart.seeded_attempts")
        .inc(static_cast<long long>(
            std::count(seeded.begin(), seeded.end(), 1)));
  }

  try {
    timed_phase(result.timing, "ilt", [&] {
      std::vector<opc::IltResult> slots(static_cast<std::size_t>(attempts));
      // Per-attempt sources linked to the run token: a fired run deadline (or
      // explicit cancel) stops every attempt at its next iteration poll,
      // while winner-driven cancellation stays per-attempt.
      std::vector<runtime::CancellationSource> cancels;
      cancels.reserve(static_cast<std::size_t>(attempts));
      for (int i = 0; i < attempts; ++i) cancels.emplace_back(token);
      std::atomic<int> winner{attempts};
      runtime::TaskGroup group;
      for (int attempt = 0; attempt < attempts; ++attempt) {
        group.run([&, attempt] {
          if (winner.load(std::memory_order_acquire) < attempt) return;
          const std::size_t rank = static_cast<std::size_t>(attempt);
          const layout::Assignment& candidate =
              generated.candidates[order[rank]];
          const bool last_attempt = attempt + 1 == attempts;
          obs::Span attempt_span("ilt.attempt");
          attempt_span.attr("attempt", attempt);
          attempt_span.attr("candidate_rank", attempt);
          attempt_span.attr("predicted_score", scores[order[rank]]);
          attempt_span.attr("abort_enabled", last_attempt ? 0.0 : 1.0);
          attempt_span.attr("warm_started", seeded[rank] ? 1.0 : 0.0);
          opc::IltResult ilt =
              seeded[rank]
                  ? engine.optimize_seeded(
                        layout, candidate, seeds[rank].p1, seeds[rank].p2,
                        config.warm_start.max_iterations,
                        /*abort_on_violation=*/!last_attempt,
                        /*record_trajectory=*/false, cancels[rank].token())
                  : engine.optimize(
                        layout, candidate, /*abort_on_violation=*/!last_attempt,
                        /*record_trajectory=*/false, cancels[rank].token());
          attempt_span.attr("iterations_run", ilt.iterations_run);
          attempt_span.attr("aborted", ilt.aborted_on_violation ? 1.0 : 0.0);
          if (ilt.cancelled) {
            // A better-ranked candidate already won; this speculative run
            // wound down early and its result is discarded.
            attempt_span.attr("cancelled", 1.0);
            return;
          }
          if (ilt.aborted_on_violation) {
            attempt_span.attr("fallback_reason",
                              std::string("print_violation"));
            log_debug("LdmoFlow: candidate ", attempt,
                      " aborted on print violation, falling back");
            return;
          }
          attempt_span.attr("actual_score", ilt.report.score());
          slots[rank] = std::move(ilt);
          int current = winner.load(std::memory_order_acquire);
          while (attempt < current &&
                 !winner.compare_exchange_weak(current, attempt,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          }
          // Stop every attempt ranked below the (possibly just-lowered)
          // winner; cancelling finished attempts is a no-op.
          const int best = winner.load(std::memory_order_acquire);
          for (int r = best + 1; r < attempts; ++r)
            cancels[static_cast<std::size_t>(r)].cancel();
        });
      }
      group.wait();
      const int best = winner.load(std::memory_order_acquire);
      if (best >= attempts) {
        // Only reachable when the run token fired: the final attempt never
        // aborts on violations, so without external cancellation some
        // attempt always wins.
        LDMO_ASSERT(token.cancelled());
        result.cancelled = true;
        return;
      }
      // Account attempts the way the serial chain would have experienced
      // them: ranks above the winner either aborted (fallbacks) or were
      // pure speculation the serial walk never reaches.
      result.candidates_tried = best + 1;
      tried_counter.inc(best + 1);
      fallback_counter.inc(best);
      if (best > 0 && best + 1 == attempts) exhausted_counter.inc();
      result.chosen = generated.candidates[order[static_cast<std::size_t>(best)]];
      result.ilt = std::move(slots[static_cast<std::size_t>(best)]);
      result.warm_started = seeded[static_cast<std::size_t>(best)] != 0;
      if (result.warm_started) {
        // Iterations the warm seed saved versus the cold budget the serial
        // chain would have spent on this winning candidate.
        static obs::Counter& wins_counter = obs::counter("warmstart.seeded_wins");
        static obs::Counter& saved_counter =
            obs::counter("warmstart.iterations_saved_total");
        static obs::Gauge& saved_gauge =
            obs::gauge("warmstart.iterations_saved");
        wins_counter.inc();
        const int saved =
            config.ilt.max_iterations - result.ilt.iterations_run;
        if (saved > 0) saved_counter.inc(saved);
        saved_gauge.set(saved);
        run_span.attr("warm_started", 1.0);
        run_span.attr("warmstart_iterations_saved", saved);
      }
    });
  } catch (const std::exception& e) {
    // TaskGroup::wait rethrows the first attempt's exception here; a
    // litho-level FlowException keeps its own stage tag.
    return failed_result(stage_error(e, FlowStage::kIlt));
  }

  if (result.cancelled) {
    result.total_seconds = total_timer.seconds();
    cancelled_counter.inc();
    run_span.attr("cancelled", 1.0);
    return result;
  }

  result.total_seconds = total_timer.seconds();
  run_span.attr("candidates_generated", result.candidates_generated);
  run_span.attr("candidates_tried", result.candidates_tried);
  run_span.attr("fallbacks", result.candidates_tried - 1);
  run_span.attr("final_score", result.ilt.report.score());
  run_span.attr("final_epe_violations", result.ilt.report.epe.violation_count);
  return result;
}

}  // namespace ldmo::core
