#include "core/ldmo_flow.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"

namespace ldmo::core {

LdmoFlow::LdmoFlow(const litho::LithoSimulator& simulator,
                   PrintabilityPredictor& predictor, LdmoConfig config)
    : simulator_(simulator), predictor_(predictor), config_(config) {
  require(config_.max_fallbacks >= 0, "LdmoFlow: negative fallback budget");
}

LdmoResult LdmoFlow::run(const layout::Layout& layout) const {
  return run_ldmo_flow(opc::IltEngine(simulator_, config_.ilt), predictor_,
                       config_, layout);
}

LdmoResult run_ldmo_flow(const opc::IltEngine& engine,
                         PrintabilityPredictor& predictor,
                         const LdmoConfig& config,
                         const layout::Layout& layout,
                         runtime::CancellationToken token) {
  static obs::Counter& runs_counter = obs::counter("flow.runs");
  static obs::Counter& generated_counter =
      obs::counter("flow.candidates_generated");
  static obs::Counter& predicted_counter =
      obs::counter("flow.candidates_predicted");
  static obs::Counter& tried_counter = obs::counter("flow.candidates_tried");
  static obs::Counter& fallback_counter = obs::counter("flow.fallbacks");
  static obs::Counter& exhausted_counter =
      obs::counter("flow.fallback_budget_exhausted");
  static obs::Counter& cancelled_counter = obs::counter("flow.cancelled");
  runs_counter.inc();

  obs::Span run_span("ldmo.run");
  run_span.attr("layout", layout.name);
  run_span.attr("predictor", predictor.name());

  Timer total_timer;
  LdmoResult result;
  const auto cancelled_result = [&]() -> LdmoResult& {
    result.cancelled = true;
    result.total_seconds = total_timer.seconds();
    cancelled_counter.inc();
    run_span.attr("cancelled", 1.0);
    return result;
  };
  if (token.cancelled()) return cancelled_result();

  // 1. Decomposition generation.
  const mpl::GenerationResult generated = timed_phase(
      result.timing, "generate",
      [&] { return mpl::generate_decompositions(layout, config.generation); });
  result.candidates_generated =
      static_cast<int>(generated.candidates.size());
  generated_counter.inc(result.candidates_generated);
  if (token.cancelled()) return cancelled_result();

  // 2. Printability prediction: rank every candidate, best (lowest) first.
  // score_batch lets the predictor batch (CNN) or parallelize (oracles)
  // across candidates; its contract is bit-identical scores to a serial
  // score() loop, so the ranking is thread-count independent.
  std::vector<double> scores;
  const std::vector<std::size_t> order = timed_phase(
      result.timing, "predict", [&] {
        scores = predictor.score_batch(layout, generated.candidates);
        predicted_counter.inc(static_cast<long long>(scores.size()));
        std::vector<std::size_t> idx(generated.candidates.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                     std::size_t b) {
          return scores[a] < scores[b];
        });
        return idx;
      });
  if (token.cancelled()) return cancelled_result();

  // 3. ILT with violation fallback, run speculatively: every attempt the
  // serial fallback chain *could* reach is launched as a task, and the
  // winner is the best-ranked attempt that finished without aborting —
  // exactly the candidate the serial chain would have settled on, so
  // masks and scores are identical at any thread count. Attempts ranked
  // below an established winner are cancelled (if running) or skipped
  // (if unstarted); with --threads 1 the tasks execute inline in rank
  // order and the chain degenerates to the serial walk, speculating on
  // nothing. The final attempt runs without the violation abort so the
  // flow always produces masks.
  const int attempts = std::min<int>(
      config.max_fallbacks + 1, static_cast<int>(order.size()));
  timed_phase(result.timing, "ilt", [&] {
    std::vector<opc::IltResult> slots(static_cast<std::size_t>(attempts));
    // Per-attempt sources linked to the run token: a fired run deadline (or
    // explicit cancel) stops every attempt at its next iteration poll,
    // while winner-driven cancellation stays per-attempt.
    std::vector<runtime::CancellationSource> cancels;
    cancels.reserve(static_cast<std::size_t>(attempts));
    for (int i = 0; i < attempts; ++i) cancels.emplace_back(token);
    std::atomic<int> winner{attempts};
    runtime::TaskGroup group;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      group.run([&, attempt] {
        if (winner.load(std::memory_order_acquire) < attempt) return;
        const std::size_t rank = static_cast<std::size_t>(attempt);
        const layout::Assignment& candidate =
            generated.candidates[order[rank]];
        const bool last_attempt = attempt + 1 == attempts;
        obs::Span attempt_span("ilt.attempt");
        attempt_span.attr("attempt", attempt);
        attempt_span.attr("candidate_rank", attempt);
        attempt_span.attr("predicted_score", scores[order[rank]]);
        attempt_span.attr("abort_enabled", last_attempt ? 0.0 : 1.0);
        opc::IltResult ilt = engine.optimize(
            layout, candidate, /*abort_on_violation=*/!last_attempt,
            /*record_trajectory=*/false, cancels[rank].token());
        attempt_span.attr("iterations_run", ilt.iterations_run);
        attempt_span.attr("aborted", ilt.aborted_on_violation ? 1.0 : 0.0);
        if (ilt.cancelled) {
          // A better-ranked candidate already won; this speculative run
          // wound down early and its result is discarded.
          attempt_span.attr("cancelled", 1.0);
          return;
        }
        if (ilt.aborted_on_violation) {
          attempt_span.attr("fallback_reason",
                            std::string("print_violation"));
          log_debug("LdmoFlow: candidate ", attempt,
                    " aborted on print violation, falling back");
          return;
        }
        attempt_span.attr("actual_score", ilt.report.score());
        slots[rank] = std::move(ilt);
        int current = winner.load(std::memory_order_acquire);
        while (attempt < current &&
               !winner.compare_exchange_weak(current, attempt,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        }
        // Stop every attempt ranked below the (possibly just-lowered)
        // winner; cancelling finished attempts is a no-op.
        const int best = winner.load(std::memory_order_acquire);
        for (int r = best + 1; r < attempts; ++r)
          cancels[static_cast<std::size_t>(r)].cancel();
      });
    }
    group.wait();
    const int best = winner.load(std::memory_order_acquire);
    if (best >= attempts) {
      // Only reachable when the run token fired: the final attempt never
      // aborts on violations, so without external cancellation some
      // attempt always wins.
      LDMO_ASSERT(token.cancelled());
      result.cancelled = true;
      return;
    }
    // Account attempts the way the serial chain would have experienced
    // them: ranks above the winner either aborted (fallbacks) or were
    // pure speculation the serial walk never reaches.
    result.candidates_tried = best + 1;
    tried_counter.inc(best + 1);
    fallback_counter.inc(best);
    if (best > 0 && best + 1 == attempts) exhausted_counter.inc();
    result.chosen = generated.candidates[order[static_cast<std::size_t>(best)]];
    result.ilt = std::move(slots[static_cast<std::size_t>(best)]);
  });

  if (result.cancelled) {
    result.total_seconds = total_timer.seconds();
    cancelled_counter.inc();
    run_span.attr("cancelled", 1.0);
    return result;
  }

  result.total_seconds = total_timer.seconds();
  run_span.attr("candidates_generated", result.candidates_generated);
  run_span.attr("candidates_tried", result.candidates_tried);
  run_span.attr("fallbacks", result.candidates_tried - 1);
  run_span.attr("final_score", result.ilt.report.score());
  run_span.attr("final_epe_violations", result.ilt.report.epe.violation_count);
  return result;
}

}  // namespace ldmo::core
