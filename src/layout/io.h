// Image and layout file output (PGM dumps for the Fig. 7 comparison and
// debugging, plus a simple text serialization for layouts).
#pragma once

#include <string>

#include "common/grid.h"
#include "layout/layout.h"

namespace ldmo::layout {

/// Writes a real grid to a binary PGM (P5), mapping [lo, hi] to [0, 255].
/// Rows are flipped so +y in layout space is up in the image.
void write_pgm(const GridF& grid, const std::string& path, double lo = 0.0,
               double hi = 1.0);

/// Writes a layout as a human-readable text file:
///   name <name>\n clip <x0> <y0> <x1> <y1>\n rect <x0> <y0> <x1> <y1>...
/// The name occupies the rest of its line, so names with internal spaces
/// or tabs round-trip exactly; line breaks in the name are replaced by
/// spaces (they are structural in this format).
void write_layout_text(const Layout& layout, const std::string& path);

/// Reads back a layout written by write_layout_text. Throws on parse errors.
Layout read_layout_text(const std::string& path);

}  // namespace ldmo::layout
