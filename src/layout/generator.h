// Synthetic contact-layout generator (NanGate FreePDK45 substitute).
//
// The paper evaluates on 8000 manually generated contact layouts that
// "resemble NAND gate 45nm library" cells, verified with Calibre DRC. We do
// not have that library or Calibre, so this generator produces statistically
// similar clips: square contacts of NanGate-like size placed on a standard-
// cell-like row/column structure, with pitches randomized across exactly the
// range where the paper's classification thresholds (nmin = 80nm,
// nmax = 98nm) bite, and every emitted layout passing our own DRC
// (see drc.h). This substitution is documented in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "layout/layout.h"

namespace ldmo::layout {

/// Generator knobs. Defaults model a 45nm contact layer in a 1024nm clip.
struct GeneratorConfig {
  std::int64_t clip_size_nm = 1024;  ///< square clip edge length
  std::int64_t contact_size_nm = 65;  ///< NanGate 45nm contact edge
  std::int64_t clip_margin_nm = 64;  ///< keep-out from clip boundary
  std::int64_t min_spacing_nm = 70;  ///< DRC minimum contact spacing
  int min_contacts = 6;
  int max_contacts = 14;
  /// Fraction of neighbor pitches drawn below nmin (conflict pairs that
  /// *must* be split across masks). The remainder spreads over (nmin, ~2x].
  double conflict_pair_fraction = 0.45;
  std::int64_t nmin_nm = 80;  ///< paper's SP threshold, used to shape pitches
  std::int64_t nmax_nm = 98;  ///< paper's VP threshold
};

/// Generates standard-cell-like contact layouts.
class LayoutGenerator {
 public:
  explicit LayoutGenerator(GeneratorConfig config = {});

  const GeneratorConfig& config() const { return config_; }

  /// One DRC-clean layout from `seed`; deterministic per (config, seed).
  Layout generate(std::uint64_t seed) const;

  /// A corpus of `count` layouts with consecutive seeds starting at `seed0`.
  std::vector<Layout> generate_corpus(int count, std::uint64_t seed0) const;

  /// Named cell-like layouts for the Fig. 7 comparison: BUF_X1-like (small),
  /// NAND3_X2-like (medium), AOI211_X1-like (large). Deterministic.
  Layout generate_cell(const std::string& cell_name) const;

 private:
  Layout generate_attempt(Rng& rng, int target_contacts) const;

  GeneratorConfig config_;
};

}  // namespace ldmo::layout
