// Design-rule checking for contact layouts (Calibre substitute).
//
// The paper verifies its generated designs with Mentor Calibre; we implement
// the three rules that matter for a single contact layer: minimum spacing,
// exact/minimum contact width, and clip-boundary clearance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/layout.h"

namespace ldmo::layout {

/// Rules applied by check_drc().
struct DrcRules {
  std::int64_t min_spacing_nm = 70;  ///< min edge-to-edge contact spacing
  std::int64_t min_width_nm = 60;    ///< min contact width/height
  std::int64_t boundary_nm = 20;     ///< min clearance to the clip boundary
};

/// Kinds of violation check_drc() reports.
enum class DrcViolationKind { Spacing, Width, Boundary };

/// One DRC violation: offending pattern(s) and measured value.
struct DrcViolation {
  DrcViolationKind kind = DrcViolationKind::Spacing;
  int pattern_a = -1;
  int pattern_b = -1;  ///< -1 for single-pattern rules
  double measured_nm = 0.0;
  std::string describe() const;
};

/// Checks all rules; returns every violation found (empty = clean).
std::vector<DrcViolation> check_drc(const Layout& layout,
                                    const DrcRules& rules);

}  // namespace ldmo::layout
