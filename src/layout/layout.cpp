#include "layout/layout.h"

#include <limits>

#include "common/error.h"

namespace ldmo::layout {

int Layout::add_pattern(const geometry::Rect& shape) {
  const int id = pattern_count();
  patterns.push_back({id, shape});
  return id;
}

double Layout::nearest_distance(int id) const {
  require(id >= 0 && id < pattern_count(),
          "Layout::nearest_distance: id out of range");
  double best = std::numeric_limits<double>::infinity();
  for (const Pattern& other : patterns) {
    if (other.id == id) continue;
    best = std::min(best, geometry::rect_distance(
                              patterns[static_cast<std::size_t>(id)].shape,
                              other.shape));
  }
  return best;
}

Assignment canonicalize(Assignment assignment) {
  if (assignment.empty() || assignment[0] == 0) return assignment;
  for (int& v : assignment) v = 1 - v;
  return assignment;
}

Assignment canonicalize_k(Assignment assignment, int mask_count) {
  require(mask_count >= 1, "canonicalize_k: mask_count must be >= 1");
  std::vector<int> relabel(static_cast<std::size_t>(mask_count), -1);
  int next = 0;
  for (int& v : assignment) {
    require(v >= 0 && v < mask_count,
            "canonicalize_k: mask id out of range");
    if (relabel[static_cast<std::size_t>(v)] == -1)
      relabel[static_cast<std::size_t>(v)] = next++;
    v = relabel[static_cast<std::size_t>(v)];
  }
  return assignment;
}

}  // namespace ldmo::layout
