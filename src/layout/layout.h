// Layout data model: a clip window plus the contact patterns inside it.
//
// The paper's workload is the contact layer of NanGate-45nm-like standard
// cells: each pattern is a square contact, and a layout is one cell clip.
// Pattern ids are dense indices (0-based) used consistently by the conflict
// graph, the decomposition assignment vectors and the covering arrays.
#pragma once

#include <string>
#include <vector>

#include "geometry/rect.h"

namespace ldmo::layout {

/// One contact pattern. `id` equals its index in Layout::patterns.
struct Pattern {
  int id = 0;
  geometry::Rect shape;
};

/// A layout clip: named window with contact patterns.
struct Layout {
  std::string name;
  geometry::Rect clip;
  std::vector<Pattern> patterns;

  int pattern_count() const { return static_cast<int>(patterns.size()); }

  /// Appends a pattern, assigning the next id. Returns the new id.
  int add_pattern(const geometry::Rect& shape);

  /// Minimum edge-to-edge distance from pattern `id` to any other pattern;
  /// +infinity for a single-pattern layout.
  double nearest_distance(int id) const;
};

/// A decomposition: mask assignment (0 -> M1, 1 -> M2) per pattern id.
using Assignment = std::vector<int>;

/// Canonicalizes mask symmetry: the two masks are unordered, so an
/// assignment and its complement describe the same decomposition (Fig. 4(c)).
/// Following the paper we pin pattern 0 ("pattern numbered 1") to mask M1:
/// if assignment[0] == 1 every value is flipped. Empty assignments pass
/// through.
Assignment canonicalize(Assignment assignment);

/// k-mask generalization (triple patterning and beyond): masks are
/// relabeled in order of first appearance, so any permutation of mask ids
/// maps to the same canonical assignment. Equivalent to canonicalize()
/// for mask_count == 2. Values must lie in [0, mask_count).
Assignment canonicalize_k(Assignment assignment, int mask_count);

}  // namespace ldmo::layout
