#include "layout/drc.h"

#include <algorithm>

#include "geometry/spatial_index.h"

namespace ldmo::layout {

std::string DrcViolation::describe() const {
  switch (kind) {
    case DrcViolationKind::Spacing:
      return "spacing " + std::to_string(measured_nm) + "nm between pattern " +
             std::to_string(pattern_a) + " and " + std::to_string(pattern_b);
    case DrcViolationKind::Width:
      return "width " + std::to_string(measured_nm) + "nm on pattern " +
             std::to_string(pattern_a);
    case DrcViolationKind::Boundary:
      return "boundary clearance " + std::to_string(measured_nm) +
             "nm on pattern " + std::to_string(pattern_a);
  }
  return "unknown violation";
}

std::vector<DrcViolation> check_drc(const Layout& layout,
                                    const DrcRules& rules) {
  std::vector<DrcViolation> violations;

  // Width and boundary rules.
  for (const Pattern& p : layout.patterns) {
    const auto w = std::min(p.shape.width(), p.shape.height());
    if (w < rules.min_width_nm)
      violations.push_back({DrcViolationKind::Width, p.id, -1,
                            static_cast<double>(w)});
    const std::int64_t clearance = std::min(
        {p.shape.lo.x - layout.clip.lo.x, p.shape.lo.y - layout.clip.lo.y,
         layout.clip.hi.x - p.shape.hi.x, layout.clip.hi.y - p.shape.hi.y});
    if (clearance < rules.boundary_nm)
      violations.push_back({DrcViolationKind::Boundary, p.id, -1,
                            static_cast<double>(clearance)});
  }

  // Spacing rule via spatial index (each close pair reported once).
  if (layout.pattern_count() > 1) {
    geometry::SpatialIndex index(layout.clip,
                                 std::max<std::int64_t>(rules.min_spacing_nm,
                                                        64));
    for (const Pattern& p : layout.patterns) index.insert(p.shape);
    for (const Pattern& p : layout.patterns) {
      const auto near = index.query_within(
          p.shape, static_cast<double>(rules.min_spacing_nm), p.id);
      for (int other : near) {
        if (other <= p.id) continue;  // report each unordered pair once
        const double d = geometry::rect_distance(
            p.shape, layout.patterns[static_cast<std::size_t>(other)].shape);
        if (d < static_cast<double>(rules.min_spacing_nm))
          violations.push_back({DrcViolationKind::Spacing, p.id, other, d});
      }
    }
  }
  return violations;
}

}  // namespace ldmo::layout
