#include "layout/io.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"
#include "common/failpoint.h"

namespace ldmo::layout {

namespace {

/// Names occupy the rest of their line in the text format, so embedded
/// spaces and tabs round-trip exactly; only line breaks are structural and
/// get replaced before writing.
std::string sanitized_name(const std::string& name) {
  std::string out = name.empty() ? "unnamed" : name;
  std::replace(out.begin(), out.end(), '\n', ' ');
  std::replace(out.begin(), out.end(), '\r', ' ');
  return out;
}

/// Parse failure with full attribution: the offending path and the byte
/// offset the stream had reached. Thrown as a stage-tagged FlowException so
/// a serving daemon reading layouts off disk (or a frame decoder reusing
/// this format) reports *which* input broke and *where*, not just that
/// parsing failed somewhere.
[[noreturn]] void parse_fail(const std::string& path, std::istream& in,
                             const std::string& what) {
  in.clear();  // tellg() on a failed stream returns -1; recover it first
  const std::streamoff offset = static_cast<std::streamoff>(in.tellg());
  std::string message = "read_layout_text: " + what + " in " + path;
  if (offset >= 0) message += " at byte " + std::to_string(offset);
  throw FlowException(FlowStage::kLayout, message);
}

}  // namespace

void write_pgm(const GridF& grid, const std::string& path, double lo,
               double hi) {
  require(hi > lo, "write_pgm: hi must exceed lo");
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "write_pgm: cannot open " + path);
  out << "P5\n" << grid.width() << " " << grid.height() << "\n255\n";
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      const double v = std::clamp((grid.at(y, x) - lo) / (hi - lo), 0.0, 1.0);
      out.put(static_cast<char>(static_cast<unsigned char>(v * 255.0 + 0.5)));
    }
  }
  require(out.good(), "write_pgm: write failed for " + path);
}

void write_layout_text(const Layout& layout, const std::string& path) {
  fail::maybe_fail("io.layout.write", FlowStage::kLayout);
  std::ofstream out(path);
  require(out.good(), "write_layout_text: cannot open " + path);
  out << "name " << sanitized_name(layout.name) << "\n";
  out << "clip " << layout.clip.lo.x << " " << layout.clip.lo.y << " "
      << layout.clip.hi.x << " " << layout.clip.hi.y << "\n";
  for (const Pattern& p : layout.patterns)
    out << "rect " << p.shape.lo.x << " " << p.shape.lo.y << " "
        << p.shape.hi.x << " " << p.shape.hi.y << "\n";
  require(out.good(), "write_layout_text: write failed for " + path);
}

Layout read_layout_text(const std::string& path) {
  fail::maybe_fail("io.layout.read", FlowStage::kLayout);
  std::ifstream in(path);
  if (!in.good())
    throw FlowException(FlowStage::kLayout,
                        "read_layout_text: cannot open " + path);
  Layout layout;
  std::string token;
  bool have_clip = false;
  while (in >> token) {
    if (token == "name") {
      // The name is everything after the single separator space up to the
      // end of the line, so names containing spaces or tabs round-trip
      // exactly (the writer keeps them on one line).
      in.get();
      std::getline(in, layout.name);
      if (!layout.name.empty() && layout.name.back() == '\r')
        layout.name.pop_back();
    } else if (token == "clip") {
      geometry::Point lo, hi;
      in >> lo.x >> lo.y >> hi.x >> hi.y;
      if (in.fail()) parse_fail(path, in, "malformed clip line");
      layout.clip = geometry::Rect::make(lo, hi);
      have_clip = true;
    } else if (token == "rect") {
      geometry::Point lo, hi;
      in >> lo.x >> lo.y >> hi.x >> hi.y;
      if (in.fail()) parse_fail(path, in, "malformed rect line");
      layout.add_pattern(geometry::Rect::make(lo, hi));
    } else {
      parse_fail(path, in, "unknown token '" + token + "'");
    }
    if (in.fail()) parse_fail(path, in, "parse error");
  }
  if (!have_clip) parse_fail(path, in, "missing clip line");
  return layout;
}

}  // namespace ldmo::layout
