#include "layout/fingerprint.h"

#include "common/hash.h"

namespace ldmo::layout {

std::uint64_t fingerprint(const Layout& layout) {
  common::Fnv1a h;
  h.str("ldmo.layout.v1");
  h.i64(layout.clip.lo.x).i64(layout.clip.lo.y);
  h.i64(layout.clip.hi.x).i64(layout.clip.hi.y);
  h.u64(static_cast<std::uint64_t>(layout.patterns.size()));
  // Pattern ids equal their index by the Layout invariant, so hashing the
  // rectangles in order covers the ids implicitly.
  for (const Pattern& p : layout.patterns) {
    h.i64(p.shape.lo.x).i64(p.shape.lo.y);
    h.i64(p.shape.hi.x).i64(p.shape.hi.y);
  }
  return h.digest();
}

}  // namespace ldmo::layout
