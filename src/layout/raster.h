// Rasterization of layouts to pixel grids.
//
// Two consumers with different needs:
//  - the lithography simulator wants per-mask real-valued grids with exact
//    area-coverage anti-aliasing (sub-pixel pattern edges drive sub-pixel
//    EPE measurements);
//  - the CNN wants the paper's 224x224 grayscale decomposition image where
//    the gray level encodes which mask a pattern sits on.
#pragma once

#include "common/grid.h"
#include "layout/layout.h"

namespace ldmo::layout {

/// Maps between nm layout coordinates and a square pixel grid covering the
/// clip. Pixel (0,0) covers the clip's lower-left corner; y grows upward.
struct RasterTransform {
  geometry::Rect clip;
  int grid_size = 0;

  double nm_per_pixel() const {
    return static_cast<double>(clip.width()) / grid_size;
  }
  /// Continuous pixel coordinate of an nm position.
  double to_px_x(double nm_x) const {
    return (nm_x - static_cast<double>(clip.lo.x)) / nm_per_pixel();
  }
  double to_px_y(double nm_y) const {
    return (nm_y - static_cast<double>(clip.lo.y)) / nm_per_pixel();
  }
  double to_nm_x(double px) const {
    return static_cast<double>(clip.lo.x) + px * nm_per_pixel();
  }
  double to_nm_y(double px) const {
    return static_cast<double>(clip.lo.y) + px * nm_per_pixel();
  }
};

/// Rasterizes the subset of patterns with `assignment[id] == mask` into a
/// grid_size x grid_size grid; each pixel holds its covered-area fraction
/// in [0, 1]. An empty assignment selects *all* patterns (the target image).
GridF rasterize_mask(const Layout& layout, const Assignment& assignment,
                     int mask, int grid_size);

/// Rasterizes the full layout (all patterns) — the ILT target image T'.
GridF rasterize_target(const Layout& layout, int grid_size);

/// The paper's CNN input: one grayscale image where mask-M1 patterns render
/// at gray level 1.0 and mask-M2 patterns at 0.5, background 0. The
/// assignment is canonicalized first so dual decompositions map to the same
/// image (Fig. 4(c)).
GridF decomposition_image(const Layout& layout, const Assignment& assignment,
                          int image_size);

}  // namespace ldmo::layout
