#include "layout/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "layout/drc.h"
#include "runtime/parallel_for.h"

namespace ldmo::layout {

LayoutGenerator::LayoutGenerator(GeneratorConfig config)
    : config_(config) {
  require(config_.clip_size_nm > 0 && config_.contact_size_nm > 0,
          "LayoutGenerator: non-positive dimensions");
  require(config_.min_contacts >= 1 &&
              config_.max_contacts >= config_.min_contacts,
          "LayoutGenerator: bad contact count range");
  require(config_.min_spacing_nm < config_.nmin_nm,
          "LayoutGenerator: DRC spacing must be below nmin for SP pairs "
          "to exist");
}

Layout LayoutGenerator::generate_attempt(Rng& rng, int target_contacts) const {
  const auto& c = config_;
  Layout layout;
  layout.clip = geometry::Rect::from_size({0, 0}, c.clip_size_nm,
                                          c.clip_size_nm);

  // Standard-cell-like structure: horizontal contact rows (gate and
  // diffusion contacts) at 2-3 distinct track heights.
  const int row_count = rng.uniform_int(2, 3);
  const std::int64_t usable =
      c.clip_size_nm - 2 * c.clip_margin_nm - c.contact_size_nm;
  std::vector<std::int64_t> row_y;
  // Rows are spaced at least min_spacing apart; usually beyond nmax so
  // vertical interactions are rare but possible (as in real cells where
  // poly and diffusion contact rows come close).
  {
    std::int64_t y = c.clip_margin_nm +
                     static_cast<std::int64_t>(rng.uniform(0.0, 60.0));
    for (int r = 0; r < row_count; ++r) {
      if (y > c.clip_margin_nm + usable) break;
      row_y.push_back(y);
      const double gap =
          rng.bernoulli(0.25)
              ? rng.uniform(static_cast<double>(c.min_spacing_nm),
                            static_cast<double>(c.nmax_nm))
              : rng.uniform(static_cast<double>(c.nmax_nm) * 1.1,
                            static_cast<double>(c.nmax_nm) * 2.2);
      y += c.contact_size_nm + static_cast<std::int64_t>(gap);
    }
  }

  // Fill rows left-to-right until the contact budget is used.
  int remaining = target_contacts;
  for (std::size_t r = 0; r < row_y.size() && remaining > 0; ++r) {
    // Budget per row: split roughly evenly with slack for the last row.
    const int rows_left = static_cast<int>(row_y.size() - r);
    const int row_budget =
        std::max(1, remaining / rows_left + rng.uniform_int(0, 1));
    std::int64_t x = c.clip_margin_nm +
                     static_cast<std::int64_t>(rng.uniform(0.0, 80.0));
    int placed = 0;
    while (placed < row_budget && remaining > 0 &&
           x + c.contact_size_nm <= c.clip_size_nm - c.clip_margin_nm) {
      // Small vertical jitter models gate vs. diffusion contact offsets.
      const std::int64_t jitter =
          static_cast<std::int64_t>(rng.uniform(-8.0, 8.0));
      const std::int64_t y = std::clamp(
          row_y[r] + jitter, c.clip_margin_nm,
          c.clip_size_nm - c.clip_margin_nm - c.contact_size_nm);
      layout.add_pattern(
          geometry::Rect::from_size({x, y}, c.contact_size_nm,
                                    c.contact_size_nm));
      ++placed;
      --remaining;
      // Next pitch: conflict-range spacing with the configured probability,
      // otherwise a relaxed spacing. Occasional large gaps model cell
      // boundaries between transistor groups.
      double spacing;
      if (rng.bernoulli(c.conflict_pair_fraction)) {
        spacing = rng.uniform(static_cast<double>(c.min_spacing_nm),
                              static_cast<double>(c.nmin_nm));
      } else if (rng.bernoulli(0.5)) {
        spacing = rng.uniform(static_cast<double>(c.nmin_nm),
                              static_cast<double>(c.nmax_nm));
      } else {
        spacing = rng.uniform(static_cast<double>(c.nmax_nm),
                              static_cast<double>(c.nmax_nm) * 2.0);
      }
      x += c.contact_size_nm + static_cast<std::int64_t>(spacing);
    }
  }
  return layout;
}

Layout LayoutGenerator::generate(std::uint64_t seed) const {
  Rng rng(seed ^ 0xC0FFEE123456789AULL);
  const DrcRules rules{config_.min_spacing_nm, config_.contact_size_nm,
                       config_.clip_margin_nm / 2};
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int target =
        rng.uniform_int(config_.min_contacts, config_.max_contacts);
    Layout candidate = generate_attempt(rng, target);
    if (candidate.pattern_count() < config_.min_contacts) continue;
    if (!check_drc(candidate, rules).empty()) continue;
    candidate.name = "clip_" + std::to_string(seed);
    return candidate;
  }
  raise("LayoutGenerator::generate: no DRC-clean layout after 64 attempts");
}

std::vector<Layout> LayoutGenerator::generate_corpus(
    int count, std::uint64_t seed0) const {
  require(count >= 0, "generate_corpus: negative count");
  // Each clip owns its per-seed Rng (no stream shared across items), so
  // generation parallelizes into indexed slots with the corpus unchanged
  // from the serial loop at any thread count.
  std::vector<Layout> corpus(static_cast<std::size_t>(count));
  runtime::parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
    corpus[i] = generate(seed0 + static_cast<std::uint64_t>(i));
  });
  return corpus;
}

Layout LayoutGenerator::generate_cell(const std::string& cell_name) const {
  // Deterministic cell-like instances sized after the named NanGate cells:
  // BUF_X1 is a 2-transistor buffer (few contacts), NAND3_X2 a 6-transistor
  // gate, AOI211_X1 a 6-transistor complex gate with denser contact packing.
  GeneratorConfig cfg = config_;
  std::uint64_t seed = 0;
  if (cell_name == "BUF_X1") {
    cfg.min_contacts = 6;
    cfg.max_contacts = 7;
    seed = 101;
  } else if (cell_name == "NAND3_X2") {
    cfg.min_contacts = 10;
    cfg.max_contacts = 11;
    seed = 202;
  } else if (cell_name == "AOI211_X1") {
    cfg.min_contacts = 12;
    cfg.max_contacts = 13;
    cfg.conflict_pair_fraction = 0.55;
    seed = 303;
  } else {
    raise("LayoutGenerator::generate_cell: unknown cell " + cell_name);
  }
  LayoutGenerator sub(cfg);
  Layout cell = sub.generate(seed);
  cell.name = cell_name;
  return cell;
}

}  // namespace ldmo::layout
