// Content fingerprint of a layout.
//
// The digest covers exactly what the downstream pipeline consumes: the clip
// window and the ordered pattern geometry. Two layouts with identical
// geometry fingerprint equal even when their names differ (the name never
// reaches the rasterizer, the decomposition generator or the simulator), so
// the serving layer's result cache is content-addressed, not name-addressed.
// Rasterization is a pure function of this geometry plus the grid config,
// which the serve cache keys hash separately (serve/cache_key.h).
#pragma once

#include <cstdint>

#include "layout/layout.h"

namespace ldmo::layout {

/// Stable 64-bit FNV-1a digest of clip + ordered pattern rectangles.
/// Identical across runs and platforms for identical geometry.
std::uint64_t fingerprint(const Layout& layout);

}  // namespace ldmo::layout
