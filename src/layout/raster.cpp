#include "layout/raster.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo::layout {
namespace {

// Adds `level` times the covered-area fraction of `rect` to `grid`,
// clamping accumulated values to `level` (patterns on the same mask can
// overlap only at rounding edges).
void splat_rect(GridF& grid, const RasterTransform& transform,
                const geometry::Rect& rect, double level) {
  const double px0 = transform.to_px_x(static_cast<double>(rect.lo.x));
  const double px1 = transform.to_px_x(static_cast<double>(rect.hi.x));
  const double py0 = transform.to_px_y(static_cast<double>(rect.lo.y));
  const double py1 = transform.to_px_y(static_cast<double>(rect.hi.y));

  const int ix0 = std::max(0, static_cast<int>(std::floor(px0)));
  const int ix1 = std::min(grid.width() - 1,
                           static_cast<int>(std::ceil(px1)) - 1);
  const int iy0 = std::max(0, static_cast<int>(std::floor(py0)));
  const int iy1 = std::min(grid.height() - 1,
                           static_cast<int>(std::ceil(py1)) - 1);

  for (int y = iy0; y <= iy1; ++y) {
    const double cover_y = std::min(py1, static_cast<double>(y + 1)) -
                           std::max(py0, static_cast<double>(y));
    if (cover_y <= 0.0) continue;
    for (int x = ix0; x <= ix1; ++x) {
      const double cover_x = std::min(px1, static_cast<double>(x + 1)) -
                             std::max(px0, static_cast<double>(x));
      if (cover_x <= 0.0) continue;
      double& cell = grid.at(y, x);
      cell = std::min(level, cell + level * cover_x * cover_y);
    }
  }
}

}  // namespace

GridF rasterize_mask(const Layout& layout, const Assignment& assignment,
                     int mask, int grid_size) {
  require(grid_size > 0, "rasterize_mask: grid_size must be positive");
  require(assignment.empty() ||
              static_cast<int>(assignment.size()) == layout.pattern_count(),
          "rasterize_mask: assignment size mismatch");
  GridF grid(grid_size, grid_size, 0.0);
  const RasterTransform transform{layout.clip, grid_size};
  for (const Pattern& p : layout.patterns) {
    if (!assignment.empty() &&
        assignment[static_cast<std::size_t>(p.id)] != mask)
      continue;
    splat_rect(grid, transform, p.shape, 1.0);
  }
  return grid;
}

GridF rasterize_target(const Layout& layout, int grid_size) {
  return rasterize_mask(layout, {}, 0, grid_size);
}

GridF decomposition_image(const Layout& layout, const Assignment& assignment,
                          int image_size) {
  require(static_cast<int>(assignment.size()) == layout.pattern_count(),
          "decomposition_image: assignment size mismatch");
  const Assignment canon = canonicalize(assignment);
  GridF image(image_size, image_size, 0.0);
  const RasterTransform transform{layout.clip, image_size};
  for (const Pattern& p : layout.patterns) {
    const double level =
        canon[static_cast<std::size_t>(p.id)] == 0 ? 1.0 : 0.5;
    splat_rect(image, transform, p.shape, level);
  }
  return image;
}

}  // namespace ldmo::layout
