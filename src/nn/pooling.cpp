#include "nn/pooling.h"

#include <limits>

#include "common/error.h"

namespace ldmo::nn {

MaxPool2d::MaxPool2d(int kernel_size, int stride, int padding)
    : kernel_size_(kernel_size), stride_(stride), padding_(padding) {
  require(kernel_size > 0 && stride > 0 && padding >= 0,
          "MaxPool2d: invalid configuration");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 4, "MaxPool2d: need NCHW input");
  input_shape_ = input.shape();
  const int N = input.dim(0), C = input.dim(1), H = input.dim(2),
            W = input.dim(3);
  const int oh = output_size(H);
  const int ow = output_size(W);
  require(oh > 0 && ow > 0, "MaxPool2d: output collapsed");

  Tensor output({N, C, oh, ow});
  argmax_.assign(output.size(), -1);
  std::size_t out_idx = 0;
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = -1;
          for (int ky = 0; ky < kernel_size_; ++ky) {
            const int iy = oy * stride_ - padding_ + ky;
            if (iy < 0 || iy >= H) continue;
            for (int kx = 0; kx < kernel_size_; ++kx) {
              const int ix = ox * stride_ - padding_ + kx;
              if (ix < 0 || ix >= W) continue;
              const float v = input.at4(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_idx =
                    ((n * C + c) * H + iy) * W + ix;
              }
            }
          }
          // A window fully in padding can only happen with absurd configs;
          // guard anyway.
          output[out_idx] = best_idx >= 0 ? best : 0.0f;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  require(grad_output.size() == argmax_.size(),
          "MaxPool2d::backward: shape mismatch");
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    if (argmax_[i] >= 0)
      grad_input[static_cast<std::size_t>(argmax_[i])] += grad_output[i];
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 4, "GlobalAvgPool: need NCHW input");
  input_shape_ = input.shape();
  const int N = input.dim(0), C = input.dim(1), H = input.dim(2),
            W = input.dim(3);
  Tensor output({N, C});
  const float scale = 1.0f / static_cast<float>(H * W);
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c) {
      float acc = 0.0f;
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) acc += input.at4(n, c, h, w);
      output.at2(n, c) = acc * scale;
    }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const int N = input_shape_[0], C = input_shape_[1], H = input_shape_[2],
            W = input_shape_[3];
  require(grad_output.rank() == 2 && grad_output.dim(0) == N &&
              grad_output.dim(1) == C,
          "GlobalAvgPool::backward: shape mismatch");
  Tensor grad_input(input_shape_);
  const float scale = 1.0f / static_cast<float>(H * W);
  for (int n = 0; n < N; ++n)
    for (int c = 0; c < C; ++c) {
      const float g = grad_output.at2(n, c) * scale;
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) grad_input.at4(n, c, h, w) = g;
    }
  return grad_input;
}

}  // namespace ldmo::nn
