#include "nn/loss.h"

#include <cmath>

#include "common/error.h"

namespace ldmo::nn {

LossResult mae_loss(const Tensor& predictions, const Tensor& targets) {
  require(predictions.same_shape(targets), "mae_loss: shape mismatch");
  require(predictions.size() > 0, "mae_loss: empty input");
  LossResult result;
  result.grad = Tensor(predictions.shape());
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    result.value += std::abs(d) * inv_n;
    result.grad[i] =
        static_cast<float>((d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) * inv_n);
  }
  return result;
}

LossResult mse_loss(const Tensor& predictions, const Tensor& targets) {
  require(predictions.same_shape(targets), "mse_loss: shape mismatch");
  require(predictions.size() > 0, "mse_loss: empty input");
  LossResult result;
  result.grad = Tensor(predictions.shape());
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    result.value += d * d * inv_n;
    result.grad[i] = static_cast<float>(2.0 * d * inv_n);
  }
  return result;
}

}  // namespace ldmo::nn
