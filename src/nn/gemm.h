// Single-precision matrix multiplication for the CNN stack.
//
// All convolution and linear layers funnel their heavy lifting through
// these three routines (forward, and the two transposed products needed by
// backward). The implementation is a cache-blocked triple loop with the
// k-loop innermost-but-one ordering that autovectorizes well — no external
// BLAS, per the from-scratch substrate rule.
#pragma once

#include <cstddef>

namespace ldmo::nn {

/// C[m x n] += A[m x k] * B[k x n]   (row-major, C NOT cleared)
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n);

/// C[m x n] = A[m x k] * B[k x n]    (row-major, C cleared first)
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// C[m x n] += A^T * B where A is [k x m], B is [k x n].
void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// C[m x n] += A * B^T where A is [m x k], B is [n x k].
void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

}  // namespace ldmo::nn
