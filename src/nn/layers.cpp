#include "nn/layers.h"

#include "common/error.h"

namespace ldmo::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool positive = input[i] > 0.0f;
    mask_[i] = positive ? 1.0f : 0.0f;
    out[i] = positive ? input[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require(grad_output.same_shape(mask_), "ReLU::backward: shape mismatch");
  Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = grad_output[i] * mask_[i];
  return grad;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() >= 2, "Flatten: need rank >= 2");
  input_shape_ = input.shape();
  const int n = input.dim(0);
  const int features = static_cast<int>(input.size()) / n;
  return input.reshaped({n, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  return params;
}

}  // namespace ldmo::nn
