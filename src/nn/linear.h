// Fully connected layer.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// Linear: y = x W^T + b over [N, in] -> [N, out].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "linear"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Parameter weight_;  ///< [out, in]
  Parameter bias_;    ///< [out]
  Tensor cached_input_;
};

}  // namespace ldmo::nn
