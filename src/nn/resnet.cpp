#include "nn/resnet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/failpoint.h"

namespace ldmo::nn {

BasicBlock::BasicBlock(int in_channels, int out_channels, int stride,
                       Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, false, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, false, rng),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    shortcut_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                              stride, 0, false, rng);
    shortcut_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& input, bool training) {
  Tensor main = bn1_.forward(conv1_.forward(input, training), training);
  main = relu1_.forward(main, training);
  main = bn2_.forward(conv2_.forward(main, training), training);

  Tensor shortcut =
      shortcut_conv_
          ? shortcut_bn_->forward(shortcut_conv_->forward(input, training),
                                  training)
          : input;
  require(main.same_shape(shortcut), "BasicBlock: path shape mismatch");
  Tensor sum(main.shape());
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = main[i] + shortcut[i];
  return relu_out_.forward(sum, training);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  const Tensor grad_sum = relu_out_.backward(grad_output);
  // Main path.
  Tensor grad = bn2_.backward(grad_sum);
  grad = conv2_.backward(grad);
  grad = relu1_.backward(grad);
  grad = bn1_.backward(grad);
  Tensor grad_input = conv1_.backward(grad);
  // Shortcut path adds into the same input gradient.
  if (shortcut_conv_) {
    Tensor grad_shortcut = shortcut_bn_->backward(grad_sum);
    grad_shortcut = shortcut_conv_->backward(grad_shortcut);
    for (std::size_t i = 0; i < grad_input.size(); ++i)
      grad_input[i] += grad_shortcut[i];
  } else {
    for (std::size_t i = 0; i < grad_input.size(); ++i)
      grad_input[i] += grad_sum[i];
  }
  return grad_input;
}

std::vector<Parameter*> BasicBlock::parameters() {
  std::vector<Parameter*> params;
  for (Layer* layer :
       std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_})
    for (Parameter* p : layer->parameters()) params.push_back(p);
  if (shortcut_conv_) {
    for (Parameter* p : shortcut_conv_->parameters()) params.push_back(p);
    for (Parameter* p : shortcut_bn_->parameters()) params.push_back(p);
  }
  return params;
}

ResNetRegressor::ResNetRegressor(ResNetConfig config) : config_(config) {
  require(config_.input_size >= 16, "ResNetRegressor: input too small");
  require(config_.width_multiplier > 0.0,
          "ResNetRegressor: width multiplier must be positive");
  require(config_.blocks_per_stage >= 1,
          "ResNetRegressor: need at least one block per stage");
  Rng rng(config_.seed);

  auto width = [&](int base) {
    return std::max(4, static_cast<int>(std::lround(
                           base * config_.width_multiplier)));
  };
  const int c1 = width(64), c2 = width(128), c3 = width(256),
            c4 = width(512);
  const int fc = std::max(8, static_cast<int>(std::lround(
                                 config_.fc_dim * config_.width_multiplier)));

  // Stem: 7x7/2 conv + BN + ReLU + 3x3/2 max pool (ResNet18 stem).
  net_.emplace<Conv2d>(1, c1, 7, 2, 3, false, rng);
  net_.emplace<BatchNorm2d>(c1);
  net_.emplace<ReLU>();
  net_.emplace<MaxPool2d>(3, 2, 1);
  // Four stages of residual blocks.
  int in_c = c1;
  for (const auto& [out_c, stride] :
       std::initializer_list<std::pair<int, int>>{
           {c1, 1}, {c2, 2}, {c3, 2}, {c4, 2}}) {
    for (int b = 0; b < config_.blocks_per_stage; ++b) {
      net_.emplace<BasicBlock>(in_c, out_c, b == 0 ? stride : 1, rng);
      in_c = out_c;
    }
  }
  // Head: GAP -> FC(fc) -> ReLU -> FC(1).
  net_.emplace<GlobalAvgPool>();
  net_.emplace<Linear>(c4, fc, rng);
  net_.emplace<ReLU>();
  net_.emplace<Linear>(fc, 1, rng);
}

Tensor ResNetRegressor::forward(const Tensor& images, bool training) {
  require(images.rank() == 4 && images.dim(1) == 1 &&
              images.dim(2) == config_.input_size &&
              images.dim(3) == config_.input_size,
          "ResNetRegressor: expected [N, 1, " +
              std::to_string(config_.input_size) + ", " +
              std::to_string(config_.input_size) + "] input");
  fail::maybe_fail("nn.forward", FlowStage::kPredict);
  return net_.forward(images, training);
}

Tensor ResNetRegressor::backward(const Tensor& grad_scores) {
  return net_.backward(grad_scores);
}

double ResNetRegressor::predict_one(const Tensor& image) {
  Tensor batch = image.reshaped({1, 1, config_.input_size, config_.input_size});
  const Tensor score = forward(batch, /*training=*/false);
  return static_cast<double>(score[0]);
}

std::size_t ResNetRegressor::parameter_count() {
  std::size_t count = 0;
  for (Parameter* p : parameters()) count += p->value.size();
  return count;
}

}  // namespace ldmo::nn
