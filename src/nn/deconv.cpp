#include "nn/deconv.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "nn/gemm.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace ldmo::nn {

ConvTranspose2d::ConvTranspose2d(int in_channels, int out_channels,
                                 int kernel_size, int stride, int padding,
                                 bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  require(in_channels > 0 && out_channels > 0 && kernel_size > 0 &&
              stride > 0 && padding >= 0 &&
              kernel_size > 2 * padding,
          "ConvTranspose2d: invalid configuration");
  const int fan_out = out_channels * kernel_size * kernel_size;
  weight_ = Parameter({in_channels, fan_out});
  const int fan_in = in_channels * kernel_size * kernel_size;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, stddev));
  if (has_bias_) bias_ = Parameter({out_channels});
}

void ConvTranspose2d::scatter_columns(const float* columns, Tensor& output,
                                      int sample) const {
  const int in_h = cached_input_.dim(2);
  const int in_w = cached_input_.dim(3);
  const int cols = in_h * in_w;
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int ky = 0; ky < kernel_size_; ++ky) {
      for (int kx = 0; kx < kernel_size_; ++kx) {
        const float* row = columns +
                           static_cast<std::size_t>((oc * kernel_size_ + ky) *
                                                    kernel_size_ + kx) * cols;
        for (int iy = 0; iy < in_h; ++iy) {
          const int oy = iy * stride_ - padding_ + ky;
          if (oy < 0 || oy >= out_h_) continue;
          for (int ix = 0; ix < in_w; ++ix) {
            const int ox = ix * stride_ - padding_ + kx;
            if (ox >= 0 && ox < out_w_)
              output.at4(sample, oc, oy, ox) +=
                  row[static_cast<std::size_t>(iy) * in_w + ix];
          }
        }
      }
    }
  }
}

void ConvTranspose2d::gather_columns(const Tensor& grad_output, int sample,
                                     float* columns) const {
  const int in_h = cached_input_.dim(2);
  const int in_w = cached_input_.dim(3);
  const int cols = in_h * in_w;
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int ky = 0; ky < kernel_size_; ++ky) {
      for (int kx = 0; kx < kernel_size_; ++kx) {
        float* row = columns +
                     static_cast<std::size_t>((oc * kernel_size_ + ky) *
                                              kernel_size_ + kx) * cols;
        for (int iy = 0; iy < in_h; ++iy) {
          const int oy = iy * stride_ - padding_ + ky;
          if (oy < 0 || oy >= out_h_) {
            std::memset(row + static_cast<std::size_t>(iy) * in_w, 0,
                        static_cast<std::size_t>(in_w) * sizeof(float));
            continue;
          }
          for (int ix = 0; ix < in_w; ++ix) {
            const int ox = ix * stride_ - padding_ + kx;
            row[static_cast<std::size_t>(iy) * in_w + ix] =
                (ox >= 0 && ox < out_w_)
                    ? grad_output.at4(sample, oc, oy, ox)
                    : 0.0f;
          }
        }
      }
    }
  }
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 4 && input.dim(1) == in_channels_,
          "ConvTranspose2d::forward: bad input shape");
  cached_input_ = input;
  const int N = input.dim(0);
  out_h_ = output_size(input.dim(2));
  out_w_ = output_size(input.dim(3));
  require(out_h_ > 0 && out_w_ > 0,
          "ConvTranspose2d::forward: output collapsed");

  const int fan_out = out_channels_ * kernel_size_ * kernel_size_;
  const int cols = input.dim(2) * input.dim(3);
  const int out_cols = out_h_ * out_w_;
  Tensor output({N, out_channels_, out_h_, out_w_});
  // Samples write disjoint output slices, so the batch loop parallelizes
  // with bit-identical results; the column scratch is per-chunk.
  runtime::parallel_for_chunks(
      static_cast<std::size_t>(N), 1,
      [&](std::size_t n_begin, std::size_t n_end) {
        runtime::PooledVector<float> columns =
            runtime::Workspace::this_thread().vec_f32_uninit(
                static_cast<std::size_t>(fan_out) * cols);
        for (std::size_t n = n_begin; n < n_end; ++n) {
          // col = W^T * x   (W is [in_c, fan_out], x is [in_c, cols])
          std::memset(columns.data(), 0, columns.size() * sizeof(float));
          const float* x = input.data() +
                           n * static_cast<std::size_t>(in_channels_) * cols;
          gemm_at_b_accumulate(weight_.value.data(), x, columns.data(),
                               fan_out, in_channels_, cols);
          float* out = output.data() +
                       n * static_cast<std::size_t>(out_channels_) * out_cols;
          if (has_bias_) {
            for (int oc = 0; oc < out_channels_; ++oc) {
              const float b = bias_.value[static_cast<std::size_t>(oc)];
              float* channel = out + static_cast<std::size_t>(oc) * out_cols;
              for (int i = 0; i < out_cols; ++i) channel[i] = b;
            }
          } else {
            std::memset(out, 0,
                        static_cast<std::size_t>(out_channels_) * out_cols *
                            sizeof(float));
          }
          scatter_columns(columns.data(), output, static_cast<int>(n));
        }
      });
  return output;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const int N = cached_input_.dim(0);
  const int fan_out = out_channels_ * kernel_size_ * kernel_size_;
  const int cols = cached_input_.dim(2) * cached_input_.dim(3);
  require(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_ &&
              grad_output.dim(2) == out_h_ && grad_output.dim(3) == out_w_,
          "ConvTranspose2d::backward: bad gradient shape");

  Tensor grad_input(cached_input_.shape());
  // The gradient w.r.t. the input of a transposed conv is an ordinary
  // convolution of grad_output with the same kernel, so gather_columns
  // turns grad_output into the familiar column matrix and one GEMM per
  // sample does the rest. The buffer is fully overwritten per sample, so
  // pooled uninitialized scratch is bit-identical to fresh vectors.
  runtime::PooledVector<float> grad_columns =
      runtime::Workspace::this_thread().vec_f32_uninit(
          static_cast<std::size_t>(fan_out) * cols);
  // The sample loop stays serial: every sample accumulates into the shared
  // weight_.grad / bias_.grad, and a per-thread grad copy + ordered merge
  // would not reproduce the serial accumulation order bit-for-bit. The
  // GEMMs inside still parallelize their independent row ranges.
  const int out_cols = out_h_ * out_w_;
  for (int n = 0; n < N; ++n) {
    gather_columns(grad_output, n, grad_columns.data());
    const float* x = cached_input_.data() +
                     static_cast<std::size_t>(n) * in_channels_ * cols;
    // dW += x * gcol^T   (x is [in_c, cols], gcol is [fan_out, cols])
    gemm_a_bt_accumulate(x, grad_columns.data(), weight_.grad.data(),
                         in_channels_, cols, fan_out);
    // dx = W * gcol      ([in_c, fan_out] x [fan_out, cols])
    float* gx = grad_input.data() +
                static_cast<std::size_t>(n) * in_channels_ * cols;
    gemm(weight_.value.data(), grad_columns.data(), gx, in_channels_, fan_out,
         cols);
    if (has_bias_) {
      const float* gout = grad_output.data() +
                          static_cast<std::size_t>(n) * out_channels_ *
                              out_cols;
      for (int oc = 0; oc < out_channels_; ++oc) {
        const float* channel = gout + static_cast<std::size_t>(oc) * out_cols;
        float acc = 0.0f;
        for (int i = 0; i < out_cols; ++i) acc += channel[i];
        bias_.grad[static_cast<std::size_t>(oc)] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> ConvTranspose2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace ldmo::nn
