#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace ldmo::nn {

Adam::Adam(std::vector<Parameter*> parameters, AdamConfig config)
    : parameters_(std::move(parameters)), config_(config) {
  require(!parameters_.empty(), "Adam: no parameters");
  require(config_.learning_rate > 0.0, "Adam: bad learning rate");
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (Parameter* p : parameters_) {
    require(p != nullptr, "Adam: null parameter");
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, step_count_);
  const double bias2 = 1.0 - std::pow(config_.beta2, step_count_);
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    Parameter& p = *parameters_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      double g = p.grad[j];
      if (config_.weight_decay > 0.0) g += config_.weight_decay * p.value[j];
      m[j] = static_cast<float>(config_.beta1 * m[j] +
                                (1.0 - config_.beta1) * g);
      v[j] = static_cast<float>(config_.beta2 * v[j] +
                                (1.0 - config_.beta2) * g * g);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      p.value[j] -= static_cast<float>(
          config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon));
    }
    p.zero_grad();
  }
}

void Adam::zero_grad() {
  for (Parameter* p : parameters_) p->zero_grad();
}

}  // namespace ldmo::nn
