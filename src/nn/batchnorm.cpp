#include "nn/batchnorm.h"

#include <cmath>

#include "common/error.h"

namespace ldmo::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  require(channels > 0, "BatchNorm2d: channels must be positive");
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  require(input.rank() == 4 && input.dim(1) == channels_,
          "BatchNorm2d: bad input shape");
  const int N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const std::size_t per_channel =
      static_cast<std::size_t>(N) * H * W;
  last_was_training_ = training;

  Tensor output(input.shape());
  if (training) {
    cached_normalized_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    for (int c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int n = 0; n < N; ++n)
        for (int h = 0; h < H; ++h)
          for (int w = 0; w < W; ++w) {
            const float v = input.at4(n, c, h, w);
            sum += v;
            sq += static_cast<double>(v) * v;
          }
      const float mean = static_cast<float>(sum / per_channel);
      const float var =
          static_cast<float>(sq / per_channel) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(var + epsilon_);
      cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;

      running_mean_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(c)] +
          momentum_ * mean;
      running_var_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_[static_cast<std::size_t>(c)] +
          momentum_ * var;

      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int n = 0; n < N; ++n)
        for (int h = 0; h < H; ++h)
          for (int w = 0; w < W; ++w) {
            const float xn = (input.at4(n, c, h, w) - mean) * inv_std;
            cached_normalized_.at4(n, c, h, w) = xn;
            output.at4(n, c, h, w) = g * xn + b;
          }
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(
          running_var_[static_cast<std::size_t>(c)] + epsilon_);
      const float mean = running_mean_[static_cast<std::size_t>(c)];
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int n = 0; n < N; ++n)
        for (int h = 0; h < H; ++h)
          for (int w = 0; w < W; ++w)
            output.at4(n, c, h, w) =
                g * (input.at4(n, c, h, w) - mean) * inv_std + b;
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  require(last_was_training_,
          "BatchNorm2d::backward: forward was not run in training mode");
  require(grad_output.same_shape(cached_normalized_),
          "BatchNorm2d::backward: shape mismatch");
  const int N = grad_output.dim(0), H = grad_output.dim(2),
            W = grad_output.dim(3);
  const double m = static_cast<double>(N) * H * W;

  Tensor grad_input(grad_output.shape());
  for (int c = 0; c < channels_; ++c) {
    // Accumulate the three reductions of the standard BN backward.
    double sum_dy = 0.0, sum_dy_xn = 0.0;
    for (int n = 0; n < N; ++n)
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) {
          const float dy = grad_output.at4(n, c, h, w);
          sum_dy += dy;
          sum_dy_xn +=
              static_cast<double>(dy) * cached_normalized_.at4(n, c, h, w);
        }
    gamma_.grad[static_cast<std::size_t>(c)] +=
        static_cast<float>(sum_dy_xn);
    beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);

    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const float k1 = static_cast<float>(sum_dy / m);
    const float k2 = static_cast<float>(sum_dy_xn / m);
    for (int n = 0; n < N; ++n)
      for (int h = 0; h < H; ++h)
        for (int w = 0; w < W; ++w) {
          const float dy = grad_output.at4(n, c, h, w);
          const float xn = cached_normalized_.at4(n, c, h, w);
          grad_input.at4(n, c, h, w) =
              g * inv_std * (dy - k1 - xn * k2);
        }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

}  // namespace ldmo::nn
