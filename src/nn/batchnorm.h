// Per-channel batch normalization for NCHW tensors.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// BatchNorm2d: training mode normalizes with batch statistics and updates
/// running estimates; eval mode uses the running estimates.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(int channels, float momentum = 0.1f, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "batchnorm2d"; }

  int channels() const { return channels_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int channels_;
  float momentum_;
  float epsilon_;
  Parameter gamma_;  ///< scale, initialized to 1
  Parameter beta_;   ///< shift, initialized to 0
  Tensor running_mean_;
  Tensor running_var_;

  // Cached forward state for backward (training mode only).
  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;
  bool last_was_training_ = false;
};

}  // namespace ldmo::nn
