// Regression losses: mean absolute error (the paper's noise-robust training
// loss, Eq. 10) and mean squared error.
#pragma once

#include <utility>

#include "nn/tensor.h"

namespace ldmo::nn {

/// Loss value plus d(loss)/d(predictions), both averaged over the batch.
struct LossResult {
  double value = 0.0;
  Tensor grad;
};

/// MAE = mean |y_hat - y| (paper Eq. 10). Subgradient 0 at exact equality.
LossResult mae_loss(const Tensor& predictions, const Tensor& targets);

/// MSE = mean (y_hat - y)^2.
LossResult mse_loss(const Tensor& predictions, const Tensor& targets);

}  // namespace ldmo::nn
