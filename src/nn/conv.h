// 2-D convolution via im2col + GEMM.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// Conv2d with square kernels, stride and zero padding. Weights are
/// Kaiming-He initialized; bias optional (ResNet convs are bias-free since
/// batch norm follows).
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel_size, int stride,
         int padding, bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "conv2d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }

  /// Output spatial size for a given input size.
  int output_size(int input_size) const {
    return (input_size + 2 * padding_ - kernel_size_) / stride_ + 1;
  }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  void im2col(const Tensor& input, int sample, float* columns) const;
  void col2im(const float* columns, Tensor& grad_input, int sample) const;

  int in_channels_;
  int out_channels_;
  int kernel_size_;
  int stride_;
  int padding_;
  bool has_bias_;
  Parameter weight_;  ///< [out_c, in_c * k * k]
  Parameter bias_;    ///< [out_c] (empty when bias disabled)

  Tensor cached_input_;
  int out_h_ = 0;
  int out_w_ = 0;
};

}  // namespace ldmo::nn
