// Parameter-free decoder plumbing: nearest-neighbour 2x upsampling and
// channel concatenation for UNet-style skip connections.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// [N, C, H, W] -> [N, C, 2H, 2W] by pixel replication. The cheap
/// alternative to ConvTranspose2d when the following conv supplies the
/// learnable mixing. backward() sums each 2x2 replicated block.
class Upsample2x : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "upsample2x"; }

 private:
  std::vector<int> input_shape_;
};

/// Concatenates two activations along the channel axis:
/// [N, Ca, H, W] + [N, Cb, H, W] -> [N, Ca + Cb, H, W].
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Adjoint of concat_channels: splits the upstream gradient back into the
/// two branch gradients (`a_channels` leading channels go to `grad_a`).
void split_channels(const Tensor& grad, int a_channels, Tensor& grad_a,
                    Tensor& grad_b);

}  // namespace ldmo::nn
