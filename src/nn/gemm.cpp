#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

namespace ldmo::nn {
namespace {
constexpr int kBlock = 64;  // fits three blocks in L1/L2 comfortably
}

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  for (int i0 = 0; i0 < m; i0 += kBlock) {
    const int i1 = std::min(i0 + kBlock, m);
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(p0 + kBlock, k);
      for (int j0 = 0; j0 < n; j0 += kBlock) {
        const int j1 = std::min(j0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          float* crow = c + static_cast<std::size_t>(i) * n;
          for (int p = p0; p < p1; ++p) {
            const float av = a[static_cast<std::size_t>(i) * k + p];
            const float* brow = b + static_cast<std::size_t>(p) * n;
            for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, static_cast<std::size_t>(m) * n * sizeof(float));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[i][j] += sum_p A[p][i] * B[p][j]
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<std::size_t>(p) * m;
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[i][j] += sum_p A[i][p] * B[j][p]
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace ldmo::nn
