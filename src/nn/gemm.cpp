#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

#include "kernels/kernels.h"
#include "runtime/parallel_for.h"

namespace ldmo::nn {
namespace {
constexpr int kBlock = 64;  // fits three blocks in L1/L2 comfortably

// Below this many multiply-adds the task setup costs more than the loop;
// measured crossover is ~64^3 on the bench machine, we gate conservatively.
constexpr long long kParallelFlops = 1LL << 18;

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  // Row ranges partition C, so every C element is written by exactly one
  // chunk and the per-element accumulation order is the serial order:
  // parallel results are bit-identical to serial at any thread count. The
  // blocked inner tiles come from the dispatched kernel table (SIMD lanes
  // span j, so accumulation over p stays serial per element).
  const kernels::KernelTable& kt = kernels::table();
  const long long flops =
      static_cast<long long>(m) * k * n;
  if (flops >= kParallelFlops && runtime::parallel_enabled() && m > kBlock) {
    // Chunk over whole kBlock row groups to keep the blocked loop intact.
    const std::size_t row_blocks =
        static_cast<std::size_t>((m + kBlock - 1) / kBlock);
    runtime::parallel_for_chunks(
        row_blocks, 1, [&](std::size_t blk_begin, std::size_t blk_end) {
          const int i_begin = static_cast<int>(blk_begin) * kBlock;
          const int i_end = std::min(static_cast<int>(blk_end) * kBlock, m);
          kt.gemm_rows_f32(a, b, c, i_begin, i_end, k, n);
        });
    return;
  }
  kt.gemm_rows_f32(a, b, c, 0, m, k, n);
}

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, static_cast<std::size_t>(m) * n * sizeof(float));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[i][j] += sum_p A[p][i] * B[p][j]
  const kernels::KernelTable& kt = kernels::table();
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<std::size_t>(p) * m;
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      kt.axpy_f32(av, brow, c + static_cast<std::size_t>(i) * n, n);
    }
  }
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[i][j] += sum_p A[i][p] * B[j][p]. Rows of C are independent dot
  // products, so row chunks parallelize with per-backend-deterministic
  // results (the dot reduction is lane-parallel in SIMD backends).
  const kernels::KernelTable& kt = kernels::table();
  const auto rows = [&](int i_begin, int i_end) {
    for (int i = i_begin; i < i_end; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        crow[j] += kt.dot_f32(arow, brow, k);
      }
    }
  };
  const long long flops = static_cast<long long>(m) * k * n;
  if (flops >= kParallelFlops && runtime::parallel_enabled() && m > 1) {
    runtime::parallel_for_chunks(
        static_cast<std::size_t>(m), 1,
        [&](std::size_t begin, std::size_t end) {
          rows(static_cast<int>(begin), static_cast<int>(end));
        });
    return;
  }
  rows(0, m);
}

}  // namespace ldmo::nn
