// Binary weight serialization.
//
// Format: magic, parameter count, then per parameter its element count and
// raw float payload. Loading validates the parameter layout matches the
// network it is loaded into, so architecture mismatches fail loudly.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ldmo::nn {

/// Writes all parameter values to `path`. Throws on I/O failure.
void save_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path);

/// Loads parameter values from `path` into the given (already constructed)
/// parameter list. Throws on I/O failure or layout mismatch.
void load_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path);

}  // namespace ldmo::nn
