// Binary weight serialization.
//
// Format: magic, parameter count, then per parameter its element count and
// raw float payload. Loading validates the parameter layout matches the
// network it is loaded into, so architecture mismatches fail loudly; the
// total file size must match the layout exactly, so truncated payloads and
// trailing garbage are rejected too. Saving writes to `<path>.tmp` and
// atomically renames into place — a crash mid-save never destroys the
// previous weights.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ldmo::nn {

/// Writes all parameter values to `path` via an atomic
/// write-to-temp-then-rename. Throws on I/O failure (leaving any previous
/// file at `path` intact).
void save_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path);

/// Loads parameter values from `path` into the given (already constructed)
/// parameter list. Throws on I/O failure or layout mismatch.
void load_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path);

}  // namespace ldmo::nn
