#include "nn/upsample.h"

#include <algorithm>

#include "common/error.h"

namespace ldmo::nn {

Tensor Upsample2x::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 4, "Upsample2x::forward: expects NCHW input");
  input_shape_ = input.shape();
  const int N = input.dim(0);
  const int C = input.dim(1);
  const int H = input.dim(2);
  const int W = input.dim(3);
  Tensor output({N, C, 2 * H, 2 * W});
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          const float v = input.at4(n, c, y, x);
          output.at4(n, c, 2 * y, 2 * x) = v;
          output.at4(n, c, 2 * y, 2 * x + 1) = v;
          output.at4(n, c, 2 * y + 1, 2 * x) = v;
          output.at4(n, c, 2 * y + 1, 2 * x + 1) = v;
        }
      }
    }
  }
  return output;
}

Tensor Upsample2x::backward(const Tensor& grad_output) {
  require(!input_shape_.empty(), "Upsample2x::backward before forward");
  const int N = input_shape_[0];
  const int C = input_shape_[1];
  const int H = input_shape_[2];
  const int W = input_shape_[3];
  require(grad_output.rank() == 4 && grad_output.dim(0) == N &&
              grad_output.dim(1) == C && grad_output.dim(2) == 2 * H &&
              grad_output.dim(3) == 2 * W,
          "Upsample2x::backward: bad gradient shape");
  Tensor grad_input(input_shape_);
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          grad_input.at4(n, c, y, x) =
              grad_output.at4(n, c, 2 * y, 2 * x) +
              grad_output.at4(n, c, 2 * y, 2 * x + 1) +
              grad_output.at4(n, c, 2 * y + 1, 2 * x) +
              grad_output.at4(n, c, 2 * y + 1, 2 * x + 1);
        }
      }
    }
  }
  return grad_input;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  require(a.rank() == 4 && b.rank() == 4 && a.dim(0) == b.dim(0) &&
              a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3),
          "concat_channels: incompatible shapes");
  const int N = a.dim(0);
  const int Ca = a.dim(1);
  const int Cb = b.dim(1);
  const std::size_t plane = static_cast<std::size_t>(a.dim(2)) * a.dim(3);
  Tensor out({N, Ca + Cb, a.dim(2), a.dim(3)});
  for (int n = 0; n < N; ++n) {
    float* dst = out.data() + static_cast<std::size_t>(n) * (Ca + Cb) * plane;
    const float* pa = a.data() + static_cast<std::size_t>(n) * Ca * plane;
    const float* pb = b.data() + static_cast<std::size_t>(n) * Cb * plane;
    std::copy(pa, pa + static_cast<std::size_t>(Ca) * plane, dst);
    std::copy(pb, pb + static_cast<std::size_t>(Cb) * plane,
              dst + static_cast<std::size_t>(Ca) * plane);
  }
  return out;
}

void split_channels(const Tensor& grad, int a_channels, Tensor& grad_a,
                    Tensor& grad_b) {
  require(grad.rank() == 4 && a_channels > 0 && a_channels < grad.dim(1),
          "split_channels: bad channel split");
  const int N = grad.dim(0);
  const int Ca = a_channels;
  const int Cb = grad.dim(1) - a_channels;
  const std::size_t plane =
      static_cast<std::size_t>(grad.dim(2)) * grad.dim(3);
  grad_a = Tensor({N, Ca, grad.dim(2), grad.dim(3)});
  grad_b = Tensor({N, Cb, grad.dim(2), grad.dim(3)});
  for (int n = 0; n < N; ++n) {
    const float* src =
        grad.data() + static_cast<std::size_t>(n) * (Ca + Cb) * plane;
    std::copy(src, src + static_cast<std::size_t>(Ca) * plane,
              grad_a.data() + static_cast<std::size_t>(n) * Ca * plane);
    std::copy(src + static_cast<std::size_t>(Ca) * plane,
              src + static_cast<std::size_t>(Ca + Cb) * plane,
              grad_b.data() + static_cast<std::size_t>(n) * Cb * plane);
  }
}

}  // namespace ldmo::nn
