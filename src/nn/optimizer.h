// Adam optimizer (paper Section IV-C: "the Adam optimizer is selected ...
// Adam computes individual adaptive learning rates").
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace ldmo::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< L2 penalty added to gradients
};

/// Adam over a fixed parameter list. Parameter pointers must stay valid for
/// the optimizer's lifetime; first/second-moment state is kept per entry.
class Adam {
 public:
  Adam(std::vector<Parameter*> parameters, AdamConfig config = {});

  /// Applies one update from the accumulated gradients, then clears them.
  void step();

  /// Clears accumulated gradients without updating.
  void zero_grad();

  int step_count() const { return step_count_; }
  AdamConfig& config() { return config_; }

 private:
  std::vector<Parameter*> parameters_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int step_count_ = 0;
};

}  // namespace ldmo::nn
