// Mini-batch training loop for the regression network.
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/resnet.h"

namespace ldmo::nn {

/// One labeled example: a grayscale image and its (normalized) score.
struct Example {
  Tensor image;  ///< [1, S, S]
  float label = 0.0f;
};

struct TrainerConfig {
  int epochs = 8;
  int batch_size = 8;
  AdamConfig adam;
  /// Learning rate is multiplied by this factor after every epoch
  /// (1.0 = constant).
  double lr_decay_per_epoch = 1.0;
  std::uint64_t shuffle_seed = 77;
  /// Loss: true = MAE (paper Eq. 10), false = MSE.
  bool use_mae = true;
};

/// Per-epoch training diagnostics.
struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  /// Learning rate the epoch actually trained at (after decay). Lets
  /// callers — and the LR-schedule regression test — audit the schedule.
  double learning_rate = 0.0;
};

/// Trains `model` on `examples`; returns per-epoch mean training loss.
/// `on_epoch` (optional) is invoked after each epoch.
std::vector<EpochStats> train_regressor(
    ResNetRegressor& model, const std::vector<Example>& examples,
    const TrainerConfig& config = {},
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

/// Same loop over a caller-owned optimizer — the fine-tuning entry point:
/// a long-lived Adam keeps its moment estimates across rounds. The LR
/// schedule is computed from a per-call snapshot of the optimizer's base
/// learning rate and the base rate is restored on exit, so back-to-back
/// rounds see identical schedules (config.adam.learning_rate is ignored
/// here; the optimizer's own rate is the base).
std::vector<EpochStats> train_regressor(
    ResNetRegressor& model, const std::vector<Example>& examples,
    const TrainerConfig& config, Adam& optimizer,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

/// Mean absolute error of the model over a labeled set (eval mode).
double evaluate_mae(ResNetRegressor& model,
                    const std::vector<Example>& examples);

}  // namespace ldmo::nn
