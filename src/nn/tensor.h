// Dense float tensor with NCHW semantics for the CNN stack.
//
// The network code treats 4-D tensors as [batch, channels, height, width]
// and 2-D tensors as [batch, features]. Storage is a flat row-major float
// vector; all shape bookkeeping is explicit (no views, no broadcasting —
// layers do their own indexing, which keeps backward passes auditable).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ldmo::nn {

/// Flat float tensor with an explicit shape.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// All entries drawn i.i.d. normal(0, stddev).
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev = 1.0f);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW accessor for rank-4 tensors.
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;

  /// [N, F] accessor for rank-2 tensors.
  float& at2(int n, int f);
  float at2(int n, int f) const;

  void fill(float value);

  /// Reinterprets the flat data with a new shape of identical element count.
  Tensor reshaped(std::vector<int> new_shape) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
std::size_t shape_size(const std::vector<int>& shape);

/// A trainable parameter: value and accumulated gradient, same shape.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(std::vector<int> shape = {})
      : value(shape), grad(std::move(shape)) {}

  void zero_grad() { grad.fill(0.0f); }
};

}  // namespace ldmo::nn
