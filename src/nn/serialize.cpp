#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "common/error.h"

namespace ldmo::nn {
namespace {
constexpr std::uint32_t kMagic = 0x4C444D4F;  // "LDMO"
}

void save_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "save_parameters: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint64_t count = parameters.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : parameters) {
    require(p != nullptr, "save_parameters: null parameter");
    const std::uint64_t elements = p->value.size();
    out.write(reinterpret_cast<const char*>(&elements), sizeof(elements));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(elements * sizeof(float)));
  }
  require(out.good(), "save_parameters: write failed for " + path);
}

void load_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_parameters: cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  require(in.good() && magic == kMagic,
          "load_parameters: not an LDMO weight file: " + path);
  require(count == parameters.size(),
          "load_parameters: parameter count mismatch (file has " +
              std::to_string(count) + ", network has " +
              std::to_string(parameters.size()) + ")");
  for (Parameter* p : parameters) {
    std::uint64_t elements = 0;
    in.read(reinterpret_cast<char*>(&elements), sizeof(elements));
    require(in.good() && elements == p->value.size(),
            "load_parameters: parameter size mismatch");
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(elements * sizeof(float)));
    require(in.good(), "load_parameters: truncated file " + path);
  }
}

}  // namespace ldmo::nn
