#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/failpoint.h"

namespace ldmo::nn {
namespace {
constexpr std::uint32_t kMagic = 0x4C444D4F;  // "LDMO"
constexpr std::uint64_t kHeaderBytes =
    sizeof(std::uint32_t) + sizeof(std::uint64_t);

/// Bytes a well-formed file for this parameter list must occupy, exactly.
std::uint64_t expected_file_bytes(
    const std::vector<Parameter*>& parameters) {
  std::uint64_t total = kHeaderBytes;
  for (const Parameter* p : parameters) {
    require(p != nullptr, "serialize: null parameter");
    total += sizeof(std::uint64_t) +
             static_cast<std::uint64_t>(p->value.size()) * sizeof(float);
  }
  return total;
}

}  // namespace

void save_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path) {
  // Write-then-rename: a crash (or failpoint) mid-save leaves at worst a
  // stale .tmp file — the previous weights at `path` survive intact. The
  // rename is atomic on POSIX filesystems.
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      require(out.good(), "save_parameters: cannot open " + tmp);
      const std::uint32_t magic = kMagic;
      const std::uint64_t count = parameters.size();
      out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
      out.write(reinterpret_cast<const char*>(&count), sizeof(count));
      for (const Parameter* p : parameters) {
        require(p != nullptr, "save_parameters: null parameter");
        const std::uint64_t elements = p->value.size();
        out.write(reinterpret_cast<const char*>(&elements),
                  sizeof(elements));
        out.write(reinterpret_cast<const char*>(p->value.data()),
                  static_cast<std::streamsize>(elements * sizeof(float)));
      }
      fail::maybe_fail("nn.save", FlowStage::kPredict);
      out.flush();
      require(out.good(), "save_parameters: write failed for " + tmp);
    }
    require(std::rename(tmp.c_str(), path.c_str()) == 0,
            "save_parameters: cannot rename " + tmp + " to " + path);
  } catch (...) {
    std::remove(tmp.c_str());  // best effort; the original is untouched
    throw;
  }
}

void load_parameters(const std::vector<Parameter*>& parameters,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_parameters: cannot open " + path);
  fail::maybe_fail("nn.load", FlowStage::kPredict);

  // Bound everything against the actual file size up front: a corrupt
  // header cannot ask for more bytes than exist, and trailing garbage
  // after the last tensor is rejected instead of silently ignored.
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes =
      static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  require(file_bytes >= kHeaderBytes,
          "load_parameters: truncated header in " + path);
  const std::uint64_t expected = expected_file_bytes(parameters);
  require(file_bytes >= expected,
          "load_parameters: truncated file " + path);
  require(file_bytes <= expected,
          "load_parameters: trailing bytes after last tensor in " + path);

  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  require(in.good() && magic == kMagic,
          "load_parameters: not an LDMO weight file: " + path);
  require(count == parameters.size(),
          "load_parameters: parameter count mismatch (file has " +
              std::to_string(count) + ", network has " +
              std::to_string(parameters.size()) + ")");
  for (Parameter* p : parameters) {
    std::uint64_t elements = 0;
    in.read(reinterpret_cast<char*>(&elements), sizeof(elements));
    require(in.good() && elements == p->value.size(),
            "load_parameters: parameter size mismatch");
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(elements * sizeof(float)));
    require(in.good(), "load_parameters: truncated file " + path);
  }
}

}  // namespace ldmo::nn
