// Layer abstraction and the simple stateless layers (ReLU, Flatten,
// Sequential container).
//
// Design: classic explicit-backward layers. forward() caches whatever the
// matching backward() needs; backward() consumes the upstream gradient and
// returns the input gradient while accumulating parameter gradients.
// No autograd graph — every gradient is hand-derived and unit-tested
// against finite differences.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ldmo::nn {

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` toggles batch-norm statistics behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass for the most recent forward() call.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// owned by the layer.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Human-readable layer id used in serialization sanity checks.
  virtual std::string name() const = 0;
};

/// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// [N, C, H, W] -> [N, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<int> input_shape_;
};

/// Ordered container running layers front-to-back (and back-to-front on
/// backward). Owns its children.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a borrowed pointer for configuration.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "sequential"; }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ldmo::nn
