#include "nn/trainer.h"

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldmo::nn {
namespace {

// Stacks examples[indices[first..last)] into a [B, 1, S, S] batch plus
// [B, 1] targets.
std::pair<Tensor, Tensor> make_batch(const std::vector<Example>& examples,
                                     const std::vector<std::size_t>& order,
                                     std::size_t first, std::size_t last,
                                     int input_size) {
  const int batch = static_cast<int>(last - first);
  Tensor images({batch, 1, input_size, input_size});
  Tensor targets({batch, 1});
  const std::size_t stride =
      static_cast<std::size_t>(input_size) * input_size;
  for (int b = 0; b < batch; ++b) {
    const Example& ex = examples[order[first + static_cast<std::size_t>(b)]];
    require(ex.image.size() == stride, "make_batch: image size mismatch");
    for (std::size_t i = 0; i < stride; ++i)
      images[static_cast<std::size_t>(b) * stride + i] = ex.image[i];
    targets.at2(b, 0) = ex.label;
  }
  return {std::move(images), std::move(targets)};
}

}  // namespace

std::vector<EpochStats> train_regressor(
    ResNetRegressor& model, const std::vector<Example>& examples,
    const TrainerConfig& config,
    const std::function<void(const EpochStats&)>& on_epoch) {
  Adam optimizer(model.parameters(), config.adam);
  return train_regressor(model, examples, config, optimizer, on_epoch);
}

std::vector<EpochStats> train_regressor(
    ResNetRegressor& model, const std::vector<Example>& examples,
    const TrainerConfig& config, Adam& optimizer,
    const std::function<void(const EpochStats&)>& on_epoch) {
  require(!examples.empty(), "train_regressor: no examples");
  require(config.epochs >= 1 && config.batch_size >= 1,
          "train_regressor: bad trainer config");

  static obs::Counter& epoch_counter = obs::counter("nn.train.epochs");
  static obs::Counter& batch_counter = obs::counter("nn.train.batches");
  static obs::Counter& example_counter = obs::counter("nn.train.examples");

  obs::Span span("nn.train");
  span.attr("examples", static_cast<double>(examples.size()));
  span.attr("epochs", config.epochs);
  span.attr("batch_size", config.batch_size);

  Rng rng(config.shuffle_seed);
  const int input_size = model.config().input_size;

  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  // Decay is computed from a snapshot of the optimizer's base rate and the
  // base rate is restored before returning. The old in-place compounding
  // (learning_rate *= decay, never reset) made the second train() call on a
  // long-lived optimizer start at the first call's final decayed rate —
  // exactly the flywheel's repeated fine-tune rounds — so round N trained
  // at decay^(N*epochs) of the configured rate instead of the configured
  // schedule.
  const double base_lr = optimizer.config().learning_rate;
  double lr = base_lr;

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.config().learning_rate = lr;
    rng.shuffle(order);
    double loss_sum = 0.0;
    int batches = 0;
    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t last = std::min(
          order.size(), first + static_cast<std::size_t>(config.batch_size));
      auto [images, targets] =
          make_batch(examples, order, first, last, input_size);
      optimizer.zero_grad();
      const Tensor predictions = model.forward(images, /*training=*/true);
      const LossResult loss = config.use_mae
                                  ? mae_loss(predictions, targets)
                                  : mse_loss(predictions, targets);
      model.backward(loss.grad);
      optimizer.step();
      loss_sum += loss.value;
      ++batches;
    }
    EpochStats stats{epoch + 1, loss_sum / std::max(1, batches), lr};
    history.push_back(stats);
    epoch_counter.inc();
    batch_counter.inc(batches);
    example_counter.inc(static_cast<long long>(order.size()));
    span.row("epochs", {{"epoch", static_cast<double>(stats.epoch)},
                        {"mean_loss", stats.mean_loss},
                        {"learning_rate", stats.learning_rate}});
    if (on_epoch) on_epoch(stats);
    lr *= config.lr_decay_per_epoch;
  }
  optimizer.config().learning_rate = base_lr;
  span.attr("final_loss", history.empty() ? 0.0 : history.back().mean_loss);
  return history;
}

double evaluate_mae(ResNetRegressor& model,
                    const std::vector<Example>& examples) {
  require(!examples.empty(), "evaluate_mae: no examples");
  double sum = 0.0;
  for (const Example& ex : examples)
    sum += std::abs(model.predict_one(ex.image) -
                    static_cast<double>(ex.label));
  return sum / static_cast<double>(examples.size());
}

}  // namespace ldmo::nn
