// 2-D transposed convolution (a.k.a. deconvolution) for decoder paths.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// ConvTranspose2d with square kernels, stride and zero padding — the
/// learnable-upsampling counterpart of Conv2d. Forward scatters each input
/// pixel through the kernel (the exact adjoint of Conv2d's gather), so a
/// ConvTranspose2d(k=2, s=2) doubles spatial resolution. Weights are
/// Kaiming-He initialized; weight layout is [in_c, out_c * k * k] — the
/// transpose of Conv2d's — so forward/backward reuse the same GEMM trio.
class ConvTranspose2d : public Layer {
 public:
  ConvTranspose2d(int in_channels, int out_channels, int kernel_size,
                  int stride, int padding, bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "conv_transpose2d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }

  /// Output spatial size for a given input size.
  int output_size(int input_size) const {
    return (input_size - 1) * stride_ - 2 * padding_ + kernel_size_;
  }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  // Both helpers use the same column layout as Conv2d's im2col —
  // columns[(oc * k + ky) * k + kx][ih * in_w + ix] — with the deconv
  // coordinate map oy = ih * stride - padding + ky. scatter_columns adds
  // columns into the (larger) output plane; gather_columns reads the
  // upstream gradient back into columns (zeroing out-of-bounds taps).
  void scatter_columns(const float* columns, Tensor& output,
                       int sample) const;
  void gather_columns(const Tensor& grad_output, int sample,
                      float* columns) const;

  int in_channels_;
  int out_channels_;
  int kernel_size_;
  int stride_;
  int padding_;
  bool has_bias_;
  Parameter weight_;  ///< [in_c, out_c * k * k]
  Parameter bias_;    ///< [out_c] (empty when bias disabled)

  Tensor cached_input_;
  int out_h_ = 0;
  int out_w_ = 0;
};

}  // namespace ldmo::nn
