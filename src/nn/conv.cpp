#include "nn/conv.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "nn/gemm.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace ldmo::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size, int stride,
               int padding, bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  require(in_channels > 0 && out_channels > 0 && kernel_size > 0 &&
              stride > 0 && padding >= 0,
          "Conv2d: invalid configuration");
  const int fan_in = in_channels * kernel_size * kernel_size;
  weight_ = Parameter({out_channels, fan_in});
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, stddev));
  if (has_bias_) bias_ = Parameter({out_channels});
}

void Conv2d::im2col(const Tensor& input, int sample, float* columns) const {
  // columns: [in_c * k * k, out_h * out_w]
  const int H = input.dim(2);
  const int W = input.dim(3);
  const int cols = out_h_ * out_w_;
  for (int c = 0; c < in_channels_; ++c) {
    for (int ky = 0; ky < kernel_size_; ++ky) {
      for (int kx = 0; kx < kernel_size_; ++kx) {
        float* row = columns +
                     static_cast<std::size_t>((c * kernel_size_ + ky) *
                                              kernel_size_ + kx) * cols;
        for (int oy = 0; oy < out_h_; ++oy) {
          const int iy = oy * stride_ - padding_ + ky;
          if (iy < 0 || iy >= H) {
            std::memset(row + static_cast<std::size_t>(oy) * out_w_, 0,
                        static_cast<std::size_t>(out_w_) * sizeof(float));
            continue;
          }
          for (int ox = 0; ox < out_w_; ++ox) {
            const int ix = ox * stride_ - padding_ + kx;
            row[static_cast<std::size_t>(oy) * out_w_ + ox] =
                (ix >= 0 && ix < W) ? input.at4(sample, c, iy, ix) : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* columns, Tensor& grad_input,
                    int sample) const {
  const int H = grad_input.dim(2);
  const int W = grad_input.dim(3);
  const int cols = out_h_ * out_w_;
  for (int c = 0; c < in_channels_; ++c) {
    for (int ky = 0; ky < kernel_size_; ++ky) {
      for (int kx = 0; kx < kernel_size_; ++kx) {
        const float* row = columns +
                           static_cast<std::size_t>((c * kernel_size_ + ky) *
                                                    kernel_size_ + kx) * cols;
        for (int oy = 0; oy < out_h_; ++oy) {
          const int iy = oy * stride_ - padding_ + ky;
          if (iy < 0 || iy >= H) continue;
          for (int ox = 0; ox < out_w_; ++ox) {
            const int ix = ox * stride_ - padding_ + kx;
            if (ix >= 0 && ix < W)
              grad_input.at4(sample, c, iy, ix) +=
                  row[static_cast<std::size_t>(oy) * out_w_ + ox];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 4 && input.dim(1) == in_channels_,
          "Conv2d::forward: bad input shape");
  cached_input_ = input;
  const int N = input.dim(0);
  out_h_ = output_size(input.dim(2));
  out_w_ = output_size(input.dim(3));
  require(out_h_ > 0 && out_w_ > 0, "Conv2d::forward: output collapsed");

  const int fan_in = in_channels_ * kernel_size_ * kernel_size_;
  const int cols = out_h_ * out_w_;
  Tensor output({N, out_channels_, out_h_, out_w_});
  // Samples write disjoint output slices, so the batch loop parallelizes
  // with bit-identical results; the im2col scratch is per-chunk.
  runtime::parallel_for_chunks(
      static_cast<std::size_t>(N), 1,
      [&](std::size_t n_begin, std::size_t n_end) {
        // im2col fully overwrites the buffer, so the worker's pooled
        // scratch needs no zeroing and is reused across inference calls.
        runtime::PooledVector<float> columns =
            runtime::Workspace::this_thread().vec_f32_uninit(
                static_cast<std::size_t>(fan_in) * cols);
        for (std::size_t n = n_begin; n < n_end; ++n) {
          im2col(input, static_cast<int>(n), columns.data());
          float* out = output.data() + n * out_channels_ * cols;
          gemm(weight_.value.data(), columns.data(), out, out_channels_,
               fan_in, cols);
          if (has_bias_) {
            for (int oc = 0; oc < out_channels_; ++oc) {
              const float b = bias_.value[static_cast<std::size_t>(oc)];
              float* channel = out + static_cast<std::size_t>(oc) * cols;
              for (int i = 0; i < cols; ++i) channel[i] += b;
            }
          }
        }
      });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const int N = cached_input_.dim(0);
  const int fan_in = in_channels_ * kernel_size_ * kernel_size_;
  const int cols = out_h_ * out_w_;
  require(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_ &&
              grad_output.dim(2) == out_h_ && grad_output.dim(3) == out_w_,
          "Conv2d::backward: bad gradient shape");

  Tensor grad_input(cached_input_.shape());
  // Both buffers are fully overwritten per sample (im2col / memset), so
  // pooled uninitialized scratch is bit-identical to fresh vectors.
  runtime::Workspace& ws = runtime::Workspace::this_thread();
  runtime::PooledVector<float> columns =
      ws.vec_f32_uninit(static_cast<std::size_t>(fan_in) * cols);
  runtime::PooledVector<float> grad_columns =
      ws.vec_f32_uninit(columns.size());
  // The sample loop stays serial: every sample accumulates into the shared
  // weight_.grad / bias_.grad, and a per-thread grad copy + ordered merge
  // would not reproduce the serial accumulation order bit-for-bit. The
  // GEMMs inside still parallelize their independent row ranges.
  for (int n = 0; n < N; ++n) {
    const float* gout = grad_output.data() +
                        static_cast<std::size_t>(n) * out_channels_ * cols;
    // dW += dY * col^T
    im2col(cached_input_, n, columns.data());
    gemm_a_bt_accumulate(gout, columns.data(), weight_.grad.data(),
                         out_channels_, cols, fan_in);
    // dcol = W^T * dY
    std::memset(grad_columns.data(), 0, grad_columns.size() * sizeof(float));
    gemm_at_b_accumulate(weight_.value.data(), gout, grad_columns.data(),
                         fan_in, out_channels_, cols);
    col2im(grad_columns.data(), grad_input, n);
    if (has_bias_) {
      for (int oc = 0; oc < out_channels_; ++oc) {
        const float* channel = gout + static_cast<std::size_t>(oc) * cols;
        float acc = 0.0f;
        for (int i = 0; i < cols; ++i) acc += channel[i];
        bias_.grad[static_cast<std::size_t>(oc)] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace ldmo::nn
