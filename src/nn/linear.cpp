#include "nn/linear.h"

#include <cmath>

#include "common/error.h"
#include "nn/gemm.h"

namespace ldmo::nn {

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  require(in_features > 0 && out_features > 0, "Linear: invalid sizes");
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, stddev));
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  require(input.rank() == 2 && input.dim(1) == in_features_,
          "Linear::forward: bad input shape");
  cached_input_ = input;
  const int N = input.dim(0);
  Tensor output({N, out_features_});
  // y = x W^T: use gemm_a_bt with A = x [N x in], B = W [out x in].
  gemm_a_bt_accumulate(input.data(), weight_.value.data(), output.data(), N,
                       in_features_, out_features_);
  for (int n = 0; n < N; ++n)
    for (int f = 0; f < out_features_; ++f)
      output.at2(n, f) += bias_.value[static_cast<std::size_t>(f)];
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int N = cached_input_.dim(0);
  require(grad_output.rank() == 2 && grad_output.dim(0) == N &&
              grad_output.dim(1) == out_features_,
          "Linear::backward: bad gradient shape");
  // dW += dY^T X  (dY [N x out], X [N x in] -> [out x in])
  gemm_at_b_accumulate(grad_output.data(), cached_input_.data(),
                       weight_.grad.data(), out_features_, N, in_features_);
  // db += column sums of dY
  for (int n = 0; n < N; ++n)
    for (int f = 0; f < out_features_; ++f)
      bias_.grad[static_cast<std::size_t>(f)] += grad_output.at2(n, f);
  // dX = dY W
  Tensor grad_input({N, in_features_});
  gemm_accumulate(grad_output.data(), weight_.value.data(), grad_input.data(),
                  N, out_features_, in_features_);
  return grad_input;
}

std::vector<Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

}  // namespace ldmo::nn
