// Spatial pooling layers: max pooling and global average pooling.
#pragma once

#include "nn/layers.h"

namespace ldmo::nn {

/// MaxPool2d with square window, stride and zero padding (padding cells
/// never win the max since they are treated as -inf).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel_size, int stride, int padding);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2d"; }

  int output_size(int input_size) const {
    return (input_size + 2 * padding_ - kernel_size_) / stride_ + 1;
  }

 private:
  int kernel_size_;
  int stride_;
  int padding_;
  std::vector<int> argmax_;  ///< winning flat input index per output cell
  std::vector<int> input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "gap"; }

 private:
  std::vector<int> input_shape_;
};

}  // namespace ldmo::nn
