#include "nn/tensor.h"

#include "common/error.h"

namespace ldmo::nn {

std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    require(d >= 0, "shape_size: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

int Tensor::dim(int i) const {
  require(i >= 0 && i < rank(), "Tensor::dim: index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at4(int n, int c, int h, int w) {
  LDMO_ASSERT(rank() == 4);
  const int C = shape_[1], H = shape_[2], W = shape_[3];
  LDMO_ASSERT(n >= 0 && n < shape_[0] && c >= 0 && c < C && h >= 0 && h < H &&
              w >= 0 && w < W);
  return data_[((static_cast<std::size_t>(n) * C + c) * H + h) * W + w];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

float& Tensor::at2(int n, int f) {
  LDMO_ASSERT(rank() == 2);
  LDMO_ASSERT(n >= 0 && n < shape_[0] && f >= 0 && f < shape_[1]);
  return data_[static_cast<std::size_t>(n) * shape_[1] + f];
}

float Tensor::at2(int n, int f) const {
  return const_cast<Tensor*>(this)->at2(n, f);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  require(shape_size(new_shape) == size(),
          "Tensor::reshaped: element count mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

}  // namespace ldmo::nn
