// ResNet-18-style regression network (paper Section IV-C / Fig. 5).
//
// The paper regresses the post-ILT printability score from a grayscale
// decomposition image with a ResNet18 backbone ("identity mapping between
// each block... after average pooling, there is a 1000 dimensions layer, and
// a fully connected layer is added to output the score").
//
// The architecture here is exactly that, parameterized by a width
// multiplier and input size: width 1.0 at 224x224 is the paper's network;
// the default slim configuration (0.25 at 64x64) delivers the same
// inductive structure at a cost a single CPU core can train in a bench run.
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace ldmo::nn {

/// Residual basic block: two 3x3 conv+BN with an identity (or projection)
/// shortcut, ReLU after the sum.
class BasicBlock : public Layer {
 public:
  BasicBlock(int in_channels, int out_channels, int stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "basic_block"; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  // Projection shortcut when shape changes; null for identity.
  std::unique_ptr<Conv2d> shortcut_conv_;
  std::unique_ptr<BatchNorm2d> shortcut_bn_;
  ReLU relu_out_;
};

/// Network hyperparameters.
struct ResNetConfig {
  int input_size = 64;          ///< square grayscale input side
  double width_multiplier = 0.25;  ///< 1.0 = full ResNet18 widths
  int blocks_per_stage = 2;     ///< ResNet18 uses 2 everywhere
  int fc_dim = 1000;            ///< penultimate layer (scaled by width)
  std::uint64_t seed = 1234;    ///< weight initialization seed

  /// The paper's full-size network.
  static ResNetConfig paper_resnet18() {
    ResNetConfig cfg;
    cfg.input_size = 224;
    cfg.width_multiplier = 1.0;
    return cfg;
  }
};

/// Full regression network: conv stem, four residual stages, global average
/// pooling, a hidden FC layer and a scalar output head.
class ResNetRegressor {
 public:
  explicit ResNetRegressor(ResNetConfig config = {});

  const ResNetConfig& config() const { return config_; }

  /// [N, 1, S, S] images -> [N, 1] scores.
  Tensor forward(const Tensor& images, bool training);

  /// Backpropagates d(loss)/d(scores); accumulates parameter gradients.
  Tensor backward(const Tensor& grad_scores);

  std::vector<Parameter*> parameters() { return net_.parameters(); }

  /// Convenience: scalar score of one image (eval mode, batch of one).
  double predict_one(const Tensor& image);

  /// Total trainable scalar count (diagnostic).
  std::size_t parameter_count();

 private:
  ResNetConfig config_;
  Sequential net_;
};

}  // namespace ldmo::nn
