#include "vision/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo::vision {

double feature_distance(const SiftFeature& p, const SiftFeature& q,
                        double match_threshold) {
  double sq = 0.0;
  for (std::size_t i = 0; i < p.descriptor.size(); ++i) {
    const double d = static_cast<double>(p.descriptor[i]) - q.descriptor[i];
    sq += d * d;
  }
  const double distance = std::sqrt(sq);
  return distance <= match_threshold ? distance : 1.0;
}

double layout_similarity(const std::vector<SiftFeature>& features_w,
                         const std::vector<SiftFeature>& features_s,
                         const SimilarityConfig& config) {
  require(config.truncate_count > 0, "layout_similarity: bad truncate count");
  std::vector<bool> matched(features_s.size(), false);
  std::vector<double> dws;
  dws.reserve(features_w.size());

  for (const SiftFeature& pw : features_w) {
    // Nearest unmatched feature of L_s.
    double best = 1.0;
    int best_index = -1;
    for (std::size_t j = 0; j < features_s.size(); ++j) {
      if (matched[j]) continue;
      const double d =
          feature_distance(pw, features_s[j], config.match_threshold);
      if (d < best) {
        best = d;
        best_index = static_cast<int>(j);
      }
    }
    if (best_index >= 0 && best <= config.match_threshold) {
      matched[static_cast<std::size_t>(best_index)] = true;
      dws.push_back(best);
    } else {
      dws.push_back(1.0);  // unmatched penalty
    }
  }

  std::sort(dws.begin(), dws.end());
  double sum = 0.0;
  const std::size_t c = static_cast<std::size_t>(config.truncate_count);
  for (std::size_t k = 0; k < c; ++k)
    // Fewer than c entries: missing correspondences cost the full penalty,
    // keeping distances comparable across layouts with different feature
    // counts (the purpose of the truncation in Alg. 2).
    sum += k < dws.size() ? dws[k] : 1.0;
  return sum;
}

std::vector<double> distance_matrix(
    const std::vector<std::vector<SiftFeature>>& feature_sets,
    const SimilarityConfig& config) {
  const std::size_t n = feature_sets.size();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Greedy matching is mildly asymmetric; symmetrize by averaging.
      const double dij =
          layout_similarity(feature_sets[i], feature_sets[j], config);
      const double dji =
          layout_similarity(feature_sets[j], feature_sets[i], config);
      const double d = 0.5 * (dij + dji);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  }
  return matrix;
}

}  // namespace ldmo::vision
