// Layout similarity from SIFT feature matching (paper Eq. 7 + Algorithm 2).
//
// Feature-point distance (Eq. 7): the Euclidean distance between the two
// unit descriptors when they match (distance <= Dth), otherwise the
// unmatched penalty 1. Layout distance (Alg. 2): greedily match each
// feature of layout w to its nearest unmatched feature of layout s, collect
// the distances, sort ascending and sum the first c — so two layouts are
// close when their c best feature correspondences are tight.
#pragma once

#include <vector>

#include "vision/sift.h"

namespace ldmo::vision {

struct SimilarityConfig {
  double match_threshold = 0.7;  ///< Dth of Eq. 7
  int truncate_count = 60;       ///< c of Algorithm 2
};

/// Eq. 7: descriptor distance, or 1 when the pair does not match.
double feature_distance(const SiftFeature& p, const SiftFeature& q,
                        double match_threshold);

/// Algorithm 2: S(L_w, L_s). Symmetric inputs give (approximately, greedy
/// matching is order-dependent) symmetric outputs; an empty feature list
/// contributes only unmatched penalties.
double layout_similarity(const std::vector<SiftFeature>& features_w,
                         const std::vector<SiftFeature>& features_s,
                         const SimilarityConfig& config = {});

/// Pairwise distance matrix over a feature-set collection (row-major n x n,
/// zero diagonal). This feeds k-medoids clustering.
std::vector<double> distance_matrix(
    const std::vector<std::vector<SiftFeature>>& feature_sets,
    const SimilarityConfig& config = {});

}  // namespace ldmo::vision
