// k-medoids clustering (PAM) over a precomputed distance matrix.
//
// The paper clusters the layout corpus with k-medoids because medoids are
// real layouts (usable as training inputs) and the method is robust to
// outlier layouts (Section IV-A). Quality is the sum of layout distances
// from each member to its cluster medoid (SLD, Eq. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ldmo::vision {

struct KMedoidsConfig {
  int clusters = 8;        ///< m in the paper (50 at corpus scale)
  int max_iterations = 50; ///< PAM swap rounds
  std::uint64_t seed = 5;  ///< initialization seed
};

struct KMedoidsResult {
  std::vector<int> medoids;      ///< element indices chosen as centers
  std::vector<int> assignment;   ///< cluster index per element
  double sld = 0.0;              ///< Eq. 8 objective at convergence
  int iterations = 0;
};

/// Runs PAM on an n x n row-major distance matrix. Requires
/// clusters <= n; distances must be symmetric with zero diagonal.
KMedoidsResult kmedoids(const std::vector<double>& distances, int n,
                        const KMedoidsConfig& config = {});

/// Recomputes the SLD (Eq. 8) of an assignment — test/diagnostic helper.
double sum_of_layout_distance(const std::vector<double>& distances, int n,
                              const std::vector<int>& medoids,
                              const std::vector<int>& assignment);

}  // namespace ldmo::vision
