// Grayscale image operations backing the SIFT pipeline.
#pragma once

#include "common/grid.h"

namespace ldmo::vision {

/// Separable Gaussian blur with kernel radius ceil(3 sigma), edge-clamped.
GridF gaussian_blur(const GridF& image, double sigma);

/// 2x downsampling by taking every second pixel (after appropriate blur).
GridF downsample2(const GridF& image);

/// Central-difference gradients; border pixels use one-sided differences.
struct GradientField {
  GridF dx;
  GridF dy;
};
GradientField gradients(const GridF& image);

/// Per-pixel a - b (shapes must match).
GridF subtract(const GridF& a, const GridF& b);

/// Bilinear upscale/downscale to an arbitrary size.
GridF resize(const GridF& image, int new_height, int new_width);

}  // namespace ldmo::vision
