#include "vision/sift.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "vision/image_ops.h"

namespace ldmo::vision {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

// Candidate keypoint before orientation/descriptor assignment.
struct Candidate {
  int octave;
  int level;   // DoG level within the octave
  int x, y;    // coordinates within the octave image
  double response;
};

// Gaussian pyramid for one octave: scales_per_octave + 3 blurred images.
std::vector<GridF> build_octave(const GridF& base, double base_sigma,
                                int levels) {
  std::vector<GridF> gaussians;
  gaussians.reserve(static_cast<std::size_t>(levels));
  const double k = std::pow(2.0, 1.0 / (levels - 3));
  gaussians.push_back(gaussian_blur(base, base_sigma));
  for (int i = 1; i < levels; ++i) {
    // Incremental blur: sigma_i^2 = sigma_{i-1}^2 + delta^2.
    const double prev = base_sigma * std::pow(k, i - 1);
    const double next = base_sigma * std::pow(k, i);
    const double delta = std::sqrt(std::max(1e-12, next * next - prev * prev));
    gaussians.push_back(gaussian_blur(gaussians.back(), delta));
  }
  return gaussians;
}

bool is_extremum(const std::vector<GridF>& dog, int level, int y, int x) {
  const double v = dog[static_cast<std::size_t>(level)].at(y, x);
  const bool is_max = v > 0.0;
  for (int dl = -1; dl <= 1; ++dl) {
    const GridF& layer = dog[static_cast<std::size_t>(level + dl)];
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dl == 0 && dy == 0 && dx == 0) continue;
        const double n = layer.at(y + dy, x + dx);
        if (is_max ? (n >= v) : (n <= v)) return false;
      }
    }
  }
  return true;
}

// Rejects elongated (edge-like) responses via the DoG Hessian trace/det
// ratio test.
bool passes_edge_test(const GridF& dog, int y, int x, double edge_ratio) {
  const double dxx = dog.at(y, x + 1) + dog.at(y, x - 1) - 2.0 * dog.at(y, x);
  const double dyy = dog.at(y + 1, x) + dog.at(y - 1, x) - 2.0 * dog.at(y, x);
  const double dxy = 0.25 * (dog.at(y + 1, x + 1) - dog.at(y + 1, x - 1) -
                             dog.at(y - 1, x + 1) + dog.at(y - 1, x - 1));
  const double trace = dxx + dyy;
  const double det = dxx * dyy - dxy * dxy;
  if (det <= 0.0) return false;
  const double r = edge_ratio;
  return trace * trace / det < (r + 1.0) * (r + 1.0) / r;
}

// Dominant gradient orientation in a window around (x, y).
double dominant_orientation(const GradientField& grad, int y, int x,
                            double sigma) {
  constexpr int kBins = 36;
  std::array<double, kBins> histogram{};
  const int radius = std::max(2, static_cast<int>(std::lround(3.0 * sigma)));
  const GridF& dx = grad.dx;
  const GridF& dy = grad.dy;
  for (int oy = -radius; oy <= radius; ++oy) {
    for (int ox = -radius; ox <= radius; ++ox) {
      const int py = y + oy, px = x + ox;
      if (!dx.in_bounds(py, px)) continue;
      const double gx = dx.at(py, px);
      const double gy = dy.at(py, px);
      const double magnitude = std::hypot(gx, gy);
      if (magnitude < 1e-12) continue;
      const double weight =
          std::exp(-0.5 * (oy * oy + ox * ox) / (sigma * sigma * 2.25));
      double angle = std::atan2(gy, gx);
      if (angle < 0.0) angle += kTwoPi;
      const int bin =
          std::min(kBins - 1, static_cast<int>(angle / kTwoPi * kBins));
      histogram[static_cast<std::size_t>(bin)] += magnitude * weight;
    }
  }
  int best = 0;
  for (int b = 1; b < kBins; ++b)
    if (histogram[static_cast<std::size_t>(b)] >
        histogram[static_cast<std::size_t>(best)])
      best = b;
  return (best + 0.5) * kTwoPi / kBins;
}

// Classic 128-d descriptor: 4x4 spatial cells x 8 orientation bins sampled
// in the keypoint's rotated frame, trilinear-free (nearest-cell) binning.
std::array<float, 128> compute_descriptor(const GradientField& grad, int y,
                                          int x, double scale,
                                          double orientation) {
  std::array<float, 128> desc{};
  const double cell = 3.0 * scale;                 // pixels per spatial cell
  const int radius = static_cast<int>(std::lround(cell * 2.5));
  const double cos_o = std::cos(-orientation);
  const double sin_o = std::sin(-orientation);
  for (int oy = -radius; oy <= radius; ++oy) {
    for (int ox = -radius; ox <= radius; ++ox) {
      const int py = y + oy, px = x + ox;
      if (!grad.dx.in_bounds(py, px)) continue;
      // Rotate the offset into the keypoint frame.
      const double rx = (cos_o * ox - sin_o * oy) / cell;
      const double ry = (sin_o * ox + cos_o * oy) / cell;
      const double cx = rx + 2.0;  // cell coordinates in [0, 4)
      const double cy = ry + 2.0;
      if (cx < 0.0 || cx >= 4.0 || cy < 0.0 || cy >= 4.0) continue;
      const double gx = grad.dx.at(py, px);
      const double gy = grad.dy.at(py, px);
      const double magnitude = std::hypot(gx, gy);
      if (magnitude < 1e-12) continue;
      double angle = std::atan2(gy, gx) - orientation;
      while (angle < 0.0) angle += kTwoPi;
      while (angle >= kTwoPi) angle -= kTwoPi;
      const int obin = std::min(7, static_cast<int>(angle / kTwoPi * 8.0));
      const int cyi = std::min(3, static_cast<int>(cy));
      const int cxi = std::min(3, static_cast<int>(cx));
      const double weight =
          std::exp(-0.5 * (rx * rx + ry * ry) / (2.0 * 2.0));
      desc[static_cast<std::size_t>((cyi * 4 + cxi) * 8 + obin)] +=
          static_cast<float>(magnitude * weight);
    }
  }
  // Normalize, clip at 0.2 (illumination robustness), renormalize.
  auto normalize = [&desc] {
    double norm = 0.0;
    for (float v : desc) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12)
      for (float& v : desc) v = static_cast<float>(v / norm);
  };
  normalize();
  for (float& v : desc) v = std::min(v, 0.2f);
  normalize();
  return desc;
}

}  // namespace

std::vector<SiftFeature> detect_sift(const GridF& image,
                                     const SiftConfig& config) {
  require(config.octaves >= 1 && config.scales_per_octave >= 1,
          "detect_sift: bad pyramid configuration");
  require(image.height() >= 16 && image.width() >= 16,
          "detect_sift: image too small");

  const int levels = config.scales_per_octave + 3;
  std::vector<SiftFeature> features;

  GridF octave_base = image;
  double octave_scale = 1.0;  // input pixels per octave pixel
  for (int octave = 0; octave < config.octaves; ++octave) {
    if (octave_base.height() < 16 || octave_base.width() < 16) break;
    const std::vector<GridF> gaussians =
        build_octave(octave_base, config.base_sigma, levels);
    std::vector<GridF> dog;
    dog.reserve(gaussians.size() - 1);
    for (std::size_t i = 0; i + 1 < gaussians.size(); ++i)
      dog.push_back(subtract(gaussians[i + 1], gaussians[i]));

    // Per-level gradient fields of the Gaussian images (descriptor source).
    std::vector<GradientField> grads;
    grads.reserve(gaussians.size());
    for (const GridF& g : gaussians) grads.push_back(gradients(g));

    const double k = std::pow(2.0, 1.0 / config.scales_per_octave);
    for (int level = 1; level + 1 < static_cast<int>(dog.size()); ++level) {
      const GridF& layer = dog[static_cast<std::size_t>(level)];
      for (int y = 1; y < layer.height() - 1; ++y) {
        for (int x = 1; x < layer.width() - 1; ++x) {
          if (std::abs(layer.at(y, x)) < config.contrast_threshold) continue;
          if (!is_extremum(dog, level, y, x)) continue;
          if (!passes_edge_test(layer, y, x, config.edge_ratio)) continue;
          const double sigma = config.base_sigma * std::pow(k, level);
          const GradientField& grad = grads[static_cast<std::size_t>(level)];
          SiftFeature feature;
          feature.x = x * octave_scale;
          feature.y = y * octave_scale;
          feature.scale = sigma * octave_scale;
          feature.orientation = dominant_orientation(grad, y, x, sigma);
          feature.descriptor =
              compute_descriptor(grad, y, x, sigma, feature.orientation);
          features.push_back(std::move(feature));
        }
      }
    }
    octave_base = downsample2(gaussians[static_cast<std::size_t>(
        config.scales_per_octave)]);
    octave_scale *= 2.0;
  }

  // Keep the strongest features when over budget (stable order otherwise).
  if (static_cast<int>(features.size()) > config.max_features)
    features.resize(static_cast<std::size_t>(config.max_features));
  return features;
}

}  // namespace ldmo::vision
