#include "vision/image_ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace ldmo::vision {

GridF gaussian_blur(const GridF& image, double sigma) {
  require(sigma > 0.0, "gaussian_blur: sigma must be positive");
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[static_cast<std::size_t>(i + radius)] =
        std::exp(-0.5 * i * i / (sigma * sigma));
    sum += kernel[static_cast<std::size_t>(i + radius)];
  }
  for (double& k : kernel) k /= sum;

  const int h = image.height(), w = image.width();
  GridF horizontal(h, w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sx = std::clamp(x + i, 0, w - 1);
        acc += kernel[static_cast<std::size_t>(i + radius)] * image.at(y, sx);
      }
      horizontal.at(y, x) = acc;
    }
  }
  GridF result(h, w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sy = std::clamp(y + i, 0, h - 1);
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               horizontal.at(sy, x);
      }
      result.at(y, x) = acc;
    }
  }
  return result;
}

GridF downsample2(const GridF& image) {
  const int h = std::max(1, image.height() / 2);
  const int w = std::max(1, image.width() / 2);
  GridF result(h, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) result.at(y, x) = image.at(2 * y, 2 * x);
  return result;
}

GradientField gradients(const GridF& image) {
  const int h = image.height(), w = image.width();
  GradientField g{GridF(h, w), GridF(h, w)};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int xm = std::max(0, x - 1), xp = std::min(w - 1, x + 1);
      const int ym = std::max(0, y - 1), yp = std::min(h - 1, y + 1);
      g.dx.at(y, x) = (image.at(y, xp) - image.at(y, xm)) /
                      static_cast<double>(xp - xm == 0 ? 1 : xp - xm);
      g.dy.at(y, x) = (image.at(yp, x) - image.at(ym, x)) /
                      static_cast<double>(yp - ym == 0 ? 1 : yp - ym);
    }
  }
  return g;
}

GridF subtract(const GridF& a, const GridF& b) {
  require(a.same_shape(b), "subtract: shape mismatch");
  GridF result(a.height(), a.width());
  for (std::size_t i = 0; i < a.size(); ++i) result[i] = a[i] - b[i];
  return result;
}

GridF resize(const GridF& image, int new_height, int new_width) {
  require(new_height > 0 && new_width > 0, "resize: bad target shape");
  GridF result(new_height, new_width);
  const double sy =
      static_cast<double>(image.height()) / static_cast<double>(new_height);
  const double sx =
      static_cast<double>(image.width()) / static_cast<double>(new_width);
  for (int y = 0; y < new_height; ++y) {
    for (int x = 0; x < new_width; ++x) {
      const double fy = std::min((y + 0.5) * sy - 0.5,
                                 static_cast<double>(image.height() - 1));
      const double fx = std::min((x + 0.5) * sx - 0.5,
                                 static_cast<double>(image.width() - 1));
      const int y0 = std::max(0, static_cast<int>(std::floor(fy)));
      const int x0 = std::max(0, static_cast<int>(std::floor(fx)));
      const int y1 = std::min(image.height() - 1, y0 + 1);
      const int x1 = std::min(image.width() - 1, x0 + 1);
      const double ty = std::clamp(fy - y0, 0.0, 1.0);
      const double tx = std::clamp(fx - x0, 0.0, 1.0);
      result.at(y, x) =
          image.at(y0, x0) * (1 - ty) * (1 - tx) +
          image.at(y0, x1) * (1 - ty) * tx +
          image.at(y1, x0) * ty * (1 - tx) + image.at(y1, x1) * ty * tx;
    }
  }
  return result;
}

}  // namespace ldmo::vision
