// Scale-invariant feature transform (Lowe 1999), the paper's layout
// feature extractor (Section IV-A).
//
// Implementation: Gaussian scale-space pyramid, difference-of-Gaussians
// extrema detection with contrast and edge-response rejection, dominant
// gradient-orientation assignment, and the classic 4x4 x 8-bin = 128-d
// descriptor (rotated to the keypoint orientation, normalized, clipped at
// 0.2, renormalized). Sub-pixel refinement is omitted — layout rasters are
// synthetic and noise-free, so integer-located extrema are stable, which is
// all the layout-similarity metric needs.
#pragma once

#include <array>
#include <vector>

#include "common/grid.h"

namespace ldmo::vision {

/// One detected feature: position (in input-image pixels), scale,
/// orientation and the 128-d unit descriptor.
struct SiftFeature {
  double x = 0.0;
  double y = 0.0;
  double scale = 0.0;
  double orientation = 0.0;  ///< radians
  std::array<float, 128> descriptor{};
};

struct SiftConfig {
  int octaves = 4;
  int scales_per_octave = 3;   ///< DoG layers inspected per octave
  double base_sigma = 1.6;
  double contrast_threshold = 0.015;  ///< |DoG| below this is rejected
  double edge_ratio = 10.0;    ///< Hessian eigenvalue ratio limit
  int max_features = 256;      ///< keep the strongest features
};

/// Detects keypoints and computes descriptors on a grayscale image with
/// values in [0, 1].
std::vector<SiftFeature> detect_sift(const GridF& image,
                                     const SiftConfig& config = {});

}  // namespace ldmo::vision
