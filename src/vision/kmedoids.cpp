#include "vision/kmedoids.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ldmo::vision {
namespace {

// Assigns every element to its nearest medoid; returns total distance.
double assign_all(const std::vector<double>& distances, int n,
                  const std::vector<int>& medoids,
                  std::vector<int>& assignment) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_cluster = 0;
    for (std::size_t m = 0; m < medoids.size(); ++m) {
      const double d =
          distances[static_cast<std::size_t>(i) * n + medoids[m]];
      if (d < best) {
        best = d;
        best_cluster = static_cast<int>(m);
      }
    }
    assignment[static_cast<std::size_t>(i)] = best_cluster;
    total += best;
  }
  return total;
}

}  // namespace

double sum_of_layout_distance(const std::vector<double>& distances, int n,
                              const std::vector<int>& medoids,
                              const std::vector<int>& assignment) {
  double total = 0.0;
  for (int i = 0; i < n; ++i)
    total += distances[static_cast<std::size_t>(i) * n +
                       medoids[static_cast<std::size_t>(
                           assignment[static_cast<std::size_t>(i)])]];
  return total;
}

KMedoidsResult kmedoids(const std::vector<double>& distances, int n,
                        const KMedoidsConfig& config) {
  require(n >= 1, "kmedoids: empty input");
  require(distances.size() == static_cast<std::size_t>(n) * n,
          "kmedoids: distance matrix size mismatch");
  require(config.clusters >= 1 && config.clusters <= n,
          "kmedoids: cluster count out of range");

  // k-medoids++-style greedy initialization: first medoid is the element
  // with the lowest total distance (the corpus "center"), each next medoid
  // the element farthest from its current nearest medoid (deterministic,
  // with the seed only breaking exact ties).
  Rng rng(config.seed);
  KMedoidsResult result;
  {
    int best = 0;
    double best_sum = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j)
        sum += distances[static_cast<std::size_t>(i) * n + j];
      if (sum < best_sum) {
        best_sum = sum;
        best = i;
      }
    }
    result.medoids.push_back(best);
  }
  while (static_cast<int>(result.medoids.size()) < config.clusters) {
    int farthest = -1;
    double farthest_distance = -1.0;
    for (int i = 0; i < n; ++i) {
      if (std::find(result.medoids.begin(), result.medoids.end(), i) !=
          result.medoids.end())
        continue;
      double nearest = std::numeric_limits<double>::infinity();
      for (int m : result.medoids)
        nearest =
            std::min(nearest, distances[static_cast<std::size_t>(i) * n + m]);
      if (nearest > farthest_distance ||
          (nearest == farthest_distance && rng.bernoulli(0.5))) {
        farthest_distance = nearest;
        farthest = i;
      }
    }
    LDMO_ASSERT(farthest >= 0);
    result.medoids.push_back(farthest);
  }

  result.assignment.assign(static_cast<std::size_t>(n), 0);
  result.sld = assign_all(distances, n, result.medoids, result.assignment);

  // PAM swap phase: try replacing each medoid with each non-medoid; accept
  // the first improving swap per round, stop when no swap improves.
  std::vector<int> trial_assignment(static_cast<std::size_t>(n), 0);
  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    ++result.iterations;
    bool improved = false;
    for (std::size_t m = 0; m < result.medoids.size() && !improved; ++m) {
      for (int candidate = 0; candidate < n && !improved; ++candidate) {
        if (std::find(result.medoids.begin(), result.medoids.end(),
                      candidate) != result.medoids.end())
          continue;
        std::vector<int> trial_medoids = result.medoids;
        trial_medoids[m] = candidate;
        const double trial_sld =
            assign_all(distances, n, trial_medoids, trial_assignment);
        if (trial_sld + 1e-12 < result.sld) {
          result.medoids = std::move(trial_medoids);
          result.assignment = trial_assignment;
          result.sld = trial_sld;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace ldmo::vision
