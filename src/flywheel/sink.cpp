#include "flywheel/sink.h"

#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "nn/tensor.h"
#include "sampling/training_set.h"

namespace ldmo::flywheel {
namespace {

/// Validation happens before any member construction: once the writer
/// thread member starts, a throwing constructor body would destroy a
/// joinable std::thread (std::terminate).
SinkConfig validated(SinkConfig config) {
  require(config.sample_every >= 1,
          "TrainingLogSink: sample_every must be >= 1");
  require(config.queue_capacity >= 1,
          "TrainingLogSink: queue_capacity must be >= 1");
  return config;
}

}  // namespace

TrainingLogSink::TrainingLogSink(SinkConfig config)
    : config_(validated(std::move(config))),
      writer_(config_.path, config_.image_size),
      preexisting_(training_log_record_count(config_.path)),
      captured_counter_(obs::counter("flywheel.captured")),
      dropped_counter_(obs::counter("flywheel.dropped")),
      bytes_counter_(obs::counter("flywheel.bytes")),
      writer_thread_([this] { writer_loop(); }) {}

TrainingLogSink::~TrainingLogSink() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
}

void TrainingLogSink::on_result(const layout::Layout& layout,
                                const layout::Assignment& chosen,
                                double actual_score) {
  const long long n = seen_.fetch_add(1);
  if (config_.sample_every > 1 && n % config_.sample_every != 0) return;

  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool capped =
        config_.max_records > 0 &&
        preexisting_ + writer_.appended() + queue_.size() >=
            config_.max_records;
    if (!stop_ && !capped && queue_.size() < config_.queue_capacity) {
      queue_.push_back(Item{layout, chosen, actual_score});
      enqueued = true;
    }
  }
  if (enqueued) {
    cv_.notify_one();
  } else {
    dropped_.fetch_add(1);
    dropped_counter_.inc();
  }
}

void TrainingLogSink::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void TrainingLogSink::writer_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      const nn::Tensor image = sampling::decomposition_tensor(
          item.layout, item.assignment, config_.image_size);
      TrainingPair pair;
      pair.image.assign(image.data(), image.data() + image.size());
      pair.score = item.score;
      writer_.append(pair);
      captured_.fetch_add(1);
      captured_counter_.inc();
      bytes_counter_.inc(static_cast<long long>(
          training_log_record_bytes(config_.image_size)));
    } catch (const std::exception& e) {
      dropped_.fetch_add(1);
      dropped_counter_.inc();
      log_warn("flywheel: dropping training pair (", e.what(), ")");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ldmo::flywheel
