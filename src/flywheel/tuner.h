// Background fine-tuner with gated promotion: the flywheel's closing arc.
//
// A FineTuner watches the training log the serve-time sink grows
// (sink.h). Once enough NEW pairs have accumulated, a round fires:
//
//   1. read the whole log (tolerant reader; a torn tail costs one pair),
//   2. split it into a train slice and a deterministic held-out slice,
//   3. score the held-out pairs with the INCUMBENT predictor network and
//      compute the Spearman rank correlation of predicted vs actual —
//      rank correlation, because candidate ordering is all the flow uses
//      the predictor for,
//   4. clone the incumbent, fine-tune the clone on the train slice
//      (nn::train_regressor over a caller-owned Adam; labels z-normalized
//      per round — rank correlation is invariant to that),
//   5. re-score the held-out slice with the candidate and PROMOTE ONLY IF
//      the candidate's held-out rank correlation beats the incumbent's by
//      at least min_gain. A worse candidate is discarded and the
//      incumbent keeps serving — mistraining is contained by the gate.
//
// Promotion serializes the candidate's weights (through nn::save_parameters
// and its "nn.save" failpoint — a fault here aborts the round, incumbent
// intact) and hands the blob to the PromoteFn with a fresh version number.
// The PromoteFn is the deployment edge: locally it wraps the blob in a
// core::VersionedPredictor and calls serve::Server::swap_backend
// (local_promoter below); over the wire it calls the net client's
// swap-weights verb. Either way the versioned name changes the config
// fingerprint, so every cached result and score from the old model is
// retired atomically with the swap (DESIGN.md §16).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/resnet.h"
#include "nn/trainer.h"

namespace ldmo::serve {
class Server;
}  // namespace ldmo::serve

namespace ldmo::flywheel {

struct TunerConfig {
  /// The training log the serve-time sink appends to.
  std::string log_path;
  /// Architecture of the predictor CNN being fine-tuned; input_size must
  /// match the log's image size.
  nn::ResNetConfig network;
  /// Fine-tune hyperparameters (epochs, batch size, LR schedule). The
  /// Adam base rate comes from trainer.adam.learning_rate.
  nn::TrainerConfig trainer;
  /// A round fires only once this many pairs arrived since the last round
  /// (or since start). Keeps rounds meaningful and bounds training churn.
  std::size_t min_new_records = 12;
  /// Every holdout_every-th pair is held out (never trained on); must be
  /// >= 2. Deterministic by position, so incumbent and candidate are
  /// always judged on the same slice.
  int holdout_every = 4;
  /// Candidate must beat the incumbent's held-out rank correlation by
  /// more than this to promote (0 = any strict improvement).
  double min_gain = 0.0;
  /// Background-thread poll cadence.
  int poll_interval_ms = 200;
  /// Scratch path for candidate weight serialization; defaults to
  /// log_path + ".candidate.bin" when empty.
  std::string scratch_path;
};

/// What one run_once() observed and decided.
struct TuneRound {
  bool attempted = false;  ///< enough new data to train at all
  bool promoted = false;
  std::size_t records = 0;  ///< whole pairs in the log at round start
  std::size_t train_count = 0;
  std::size_t holdout_count = 0;
  /// Held-out Spearman rank correlation of predicted vs actual score.
  /// The incumbent reports -2.0 (below any real correlation) when no
  /// incumbent weights were ever set — the first trained candidate then
  /// always wins, bootstrapping the loop.
  double incumbent_corr = -2.0;
  double candidate_corr = -2.0;
  std::uint64_t version = 0;  ///< assigned on promotion, else 0
  std::string detail;         ///< human-readable outcome note
};

/// Deployment edge: receives a freshly assigned version number and the
/// serialized weight blob (nn::save_parameters format) of the promoted
/// candidate. Must throw on failure — the tuner then keeps the incumbent.
using PromoteFn =
    std::function<void(std::uint64_t version,
                       const std::vector<std::uint8_t>& blob)>;

class FineTuner {
 public:
  FineTuner(TunerConfig config, PromoteFn promote);
  ~FineTuner();  ///< stop()s if running

  FineTuner(const FineTuner&) = delete;
  FineTuner& operator=(const FineTuner&) = delete;

  /// Installs incumbent weights (nn::save_parameters blob, e.g. the bytes
  /// the serve daemon loaded at boot) so round one competes against the
  /// deployed model instead of a fresh init.
  void set_incumbent(const std::vector<std::uint8_t>& blob);

  /// One synchronous flywheel round; see the file comment for the arc.
  /// A missing/empty/insufficient log returns attempted=false. Throws
  /// only on unrecoverable trouble (corrupt log before the tail,
  /// architecture mismatch).
  TuneRound run_once();

  /// Starts/stops the background polling thread running run_once()
  /// per poll_interval_ms; exceptions are logged, the loop continues.
  void start();
  void stop();

  std::uint64_t version() const { return version_.load(); }
  long long rounds() const { return rounds_.load(); }
  long long promotions() const { return promotions_.load(); }
  const TunerConfig& config() const { return config_; }

 private:
  double holdout_correlation(nn::ResNetRegressor& model,
                             const std::vector<nn::Example>& holdout,
                             const std::vector<double>& actual);

  TunerConfig config_;
  PromoteFn promote_;

  std::mutex model_mu_;  ///< guards incumbent_ and consumed_
  std::unique_ptr<nn::ResNetRegressor> incumbent_;
  bool has_incumbent_ = false;
  std::size_t consumed_ = 0;  ///< pairs already seen by a fired round

  std::atomic<std::uint64_t> version_{0};
  std::atomic<long long> rounds_{0};
  std::atomic<long long> promotions_{0};

  std::mutex run_mu_;  ///< serializes run_once vs background loop
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread loop_;
};

/// PromoteFn for the in-process path: deserializes the blob into a fresh
/// CnnPredictor (architecture `network`), wraps it in
/// core::VersionedPredictor ("cnn@vN") and swap_backend()s it into
/// `server` — retiring all cached results/scores from the old model via
/// the fingerprint change. `scratch_path` stages the blob for
/// nn::load_parameters. The server must outlive the returned function.
PromoteFn local_promoter(serve::Server& server, nn::ResNetConfig network,
                         std::string scratch_path);

}  // namespace ldmo::flywheel
