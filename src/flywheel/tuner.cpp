#include "flywheel/tuner.h"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/stats.h"
#include "core/predictor.h"
#include "flywheel/log.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace ldmo::flywheel {
namespace {

std::string scratch_path_for(const TunerConfig& config) {
  return config.scratch_path.empty() ? config.log_path + ".candidate.bin"
                                     : config.scratch_path;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "flywheel: cannot write " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  out.flush();
  require(out.good(), "flywheel: write failed for " + path);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  require(in.good(), "flywheel: cannot read " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(blob.data()), size);
  require(in.good(), "flywheel: short read from " + path);
  return blob;
}

}  // namespace

FineTuner::FineTuner(TunerConfig config, PromoteFn promote)
    : config_(std::move(config)), promote_(std::move(promote)) {
  require(config_.holdout_every >= 2,
          "FineTuner: holdout_every must be >= 2");
  require(config_.min_new_records >= 1,
          "FineTuner: min_new_records must be >= 1");
  require(!config_.log_path.empty(), "FineTuner: log_path required");
}

FineTuner::~FineTuner() { stop(); }

void FineTuner::set_incumbent(const std::vector<std::uint8_t>& blob) {
  auto model = std::make_unique<nn::ResNetRegressor>(config_.network);
  const std::string path = scratch_path_for(config_) + ".incumbent";
  write_bytes(path, blob);
  nn::load_parameters(model->parameters(), path);
  std::lock_guard<std::mutex> lock(model_mu_);
  incumbent_ = std::move(model);
  has_incumbent_ = true;
}

double FineTuner::holdout_correlation(
    nn::ResNetRegressor& model, const std::vector<nn::Example>& holdout,
    const std::vector<double>& actual) {
  std::vector<double> predicted;
  predicted.reserve(holdout.size());
  for (const nn::Example& example : holdout)
    predicted.push_back(model.predict_one(example.image));
  return spearman_rank_correlation(predicted, actual);
}

TuneRound FineTuner::run_once() {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  TuneRound round;
  if (!std::filesystem::exists(config_.log_path)) {
    round.detail = "no training log yet";
    return round;
  }
  // A torn tail costs a pair; corruption before the tail throws out of
  // here — a rotten log must not train a model (log.h).
  const TrainingLog log = read_training_log(config_.log_path);
  require(log.image_size == config_.network.input_size,
          "FineTuner: log image size " + std::to_string(log.image_size) +
              " != network input size " +
              std::to_string(config_.network.input_size));
  round.records = log.pairs.size();

  std::lock_guard<std::mutex> model_lock(model_mu_);
  if (log.pairs.size() < consumed_ + config_.min_new_records) {
    round.detail = "waiting for data (" + std::to_string(log.pairs.size()) +
                   " of " +
                   std::to_string(consumed_ + config_.min_new_records) +
                   " pairs)";
    return round;
  }

  // Deterministic positional split: every holdout_every-th pair is judged,
  // never trained on, and both contenders see the identical slice.
  const int side = config_.network.input_size;
  std::vector<nn::Example> train;
  std::vector<nn::Example> holdout;
  std::vector<double> train_scores;
  std::vector<double> actual;
  for (std::size_t i = 0; i < log.pairs.size(); ++i) {
    const TrainingPair& pair = log.pairs[i];
    nn::Example example;
    example.image = nn::Tensor({1, side, side});
    std::copy(pair.image.begin(), pair.image.end(), example.image.data());
    if (static_cast<int>(i % static_cast<std::size_t>(
                                 config_.holdout_every)) ==
        config_.holdout_every - 1) {
      holdout.push_back(std::move(example));
      actual.push_back(pair.score);
    } else {
      train.push_back(std::move(example));
      train_scores.push_back(pair.score);
    }
  }
  if (holdout.size() < 2 || train.empty()) {
    round.detail = "split too small to judge";
    return round;
  }
  round.train_count = train.size();
  round.holdout_count = holdout.size();

  // Labels are z-normalized per round (the regression head trains best
  // near zero); the held-out gate compares RANK correlations against raw
  // scores, which normalization cannot move.
  double mean = 0.0;
  for (double s : train_scores) mean += s;
  mean /= static_cast<double>(train_scores.size());
  double var = 0.0;
  for (double s : train_scores) var += (s - mean) * (s - mean);
  const double stddev =
      std::sqrt(var / static_cast<double>(train_scores.size()));
  const double scale = stddev > 0.0 ? stddev : 1.0;
  for (std::size_t i = 0; i < train.size(); ++i)
    train[i].label = static_cast<float>((train_scores[i] - mean) / scale);

  round.attempted = true;
  rounds_.fetch_add(1);
  obs::counter("flywheel.rounds").inc();
  consumed_ = log.pairs.size();

  if (has_incumbent_)
    round.incumbent_corr = holdout_correlation(*incumbent_, holdout, actual);
  obs::gauge("flywheel.corr.incumbent").set(round.incumbent_corr);

  // Candidate = incumbent's weights (or a fresh init when bootstrapping),
  // fine-tuned on the train slice through the caller-owned-optimizer
  // entry point (trainer.h): the LR schedule restarts from the Adam base
  // rate every round instead of compounding.
  auto candidate = std::make_unique<nn::ResNetRegressor>(config_.network);
  if (has_incumbent_) {
    const std::vector<nn::Parameter*> src = incumbent_->parameters();
    const std::vector<nn::Parameter*> dst = candidate->parameters();
    require(src.size() == dst.size(),
            "FineTuner: incumbent/candidate parameter layout mismatch");
    for (std::size_t i = 0; i < src.size(); ++i)
      dst[i]->value = src[i]->value;
  }
  nn::Adam optimizer(candidate->parameters(), config_.trainer.adam);
  nn::train_regressor(*candidate, train, config_.trainer, optimizer);
  round.candidate_corr = holdout_correlation(*candidate, holdout, actual);
  obs::gauge("flywheel.corr.candidate").set(round.candidate_corr);

  if (round.candidate_corr > round.incumbent_corr + config_.min_gain) {
    // Weight serialization runs the "nn.save" failpoint; any fault in the
    // promotion path aborts THIS round only — the incumbent keeps serving
    // and the next round gets a fresh shot (ISSUE-10 fault drill).
    try {
      const std::string scratch = scratch_path_for(config_);
      nn::save_parameters(candidate->parameters(), scratch);
      const std::vector<std::uint8_t> blob = read_bytes(scratch);
      const std::uint64_t version = version_.fetch_add(1) + 1;
      if (promote_) promote_(version, blob);
      incumbent_ = std::move(candidate);
      has_incumbent_ = true;
      round.promoted = true;
      round.version = version;
      promotions_.fetch_add(1);
      obs::counter("flywheel.promotions").inc();
      round.detail = "promoted v" + std::to_string(version);
      log_info("flywheel: promoted candidate v", version,
               " (held-out rank corr ", round.candidate_corr, " > ",
               round.incumbent_corr, ")");
    } catch (const std::exception& e) {
      round.detail = std::string("promotion aborted: ") + e.what();
      log_warn("flywheel: promotion aborted, incumbent keeps serving: ",
               e.what());
    }
  } else {
    round.detail = "gate held (candidate " +
                   std::to_string(round.candidate_corr) + " vs incumbent " +
                   std::to_string(round.incumbent_corr) + ")";
    log_info("flywheel: ", round.detail);
  }
  return round;
}

void FineTuner::start() {
  require(!loop_.joinable(), "FineTuner: already started");
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  loop_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(
            lock, std::chrono::milliseconds(config_.poll_interval_ms),
            [&] { return stopping_; });
        if (stopping_) return;
      }
      try {
        run_once();
      } catch (const std::exception& e) {
        log_warn("flywheel: background round failed: ", e.what());
      }
    }
  });
}

void FineTuner::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
}

PromoteFn local_promoter(serve::Server& server, nn::ResNetConfig network,
                         std::string scratch_path) {
  return [&server, network, scratch_path = std::move(scratch_path)](
             std::uint64_t version, const std::vector<std::uint8_t>& blob) {
    write_bytes(scratch_path, blob);
    auto net = std::make_unique<nn::ResNetRegressor>(network);
    nn::load_parameters(net->parameters(), scratch_path);
    server.swap_backend(std::make_unique<core::VersionedPredictor>(
        std::make_unique<core::CnnPredictor>(std::move(net)), version));
  };
}

}  // namespace ldmo::flywheel
