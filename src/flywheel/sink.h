// Serve-time training-data capture: the flywheel's intake.
//
// TrainingLogSink implements serve::CaptureHook. The dispatcher-side
// on_result() is deliberately tiny — a sampling check and a bounded queue
// push of copies — so capture cost on the request path is nanoseconds, not
// rasterization. A dedicated writer thread drains the queue, rasterizes
// each decomposition to the CNN's grayscale input image
// (sampling::decomposition_tensor) and appends the (image, actual score)
// pair to the append-only training log (log.h).
//
// Backpressure is drop-not-block: when the queue is full, or the log
// already holds max_records, the pair is counted in flywheel.dropped and
// forgotten. Training data is a sample of traffic, never a reason to slow
// it down. Append failures (disk faults, the flywheel.log.append
// failpoint) are likewise counted and logged, and the writer keeps going —
// the incumbent model keeps serving regardless (ISSUE-10 fault drill).
//
// Counters: flywheel.captured (pairs durably appended), flywheel.dropped
// (sampled-out pairs are NOT counted; only capacity/cap/fault drops are),
// flywheel.bytes (bytes appended).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "flywheel/log.h"
#include "obs/metrics.h"
#include "serve/capture.h"

namespace ldmo::flywheel {

struct SinkConfig {
  /// Training-log path; created (or resumed) by the writer.
  std::string path;
  /// Side of the square grayscale image — must match the predictor CNN's
  /// input_size so logged pairs train it directly.
  int image_size = 64;
  /// Capture 1 of every N eligible results (1 = all). Sampling happens
  /// before the queue, so a busy server pays one atomic increment for a
  /// sampled-out result.
  int sample_every = 1;
  /// Bounded handoff queue between dispatchers and the writer thread.
  std::size_t queue_capacity = 64;
  /// Stop capturing once the log holds this many records (0 = unbounded).
  /// Keeps a long-lived server from growing the log without limit.
  std::size_t max_records = 4096;
};

class TrainingLogSink : public serve::CaptureHook {
 public:
  /// Opens (or creates) the log and starts the writer thread. Throws if
  /// the path is unwritable or holds a log with a different image size.
  explicit TrainingLogSink(SinkConfig config);
  /// Writes out anything still queued, then stops and joins the writer
  /// (the queue is bounded, so this is bounded work).
  ~TrainingLogSink() override;

  TrainingLogSink(const TrainingLogSink&) = delete;
  TrainingLogSink& operator=(const TrainingLogSink&) = delete;

  void on_result(const layout::Layout& layout,
                 const layout::Assignment& chosen,
                 double actual_score) override;

  /// Blocks until every queued pair has been written (or dropped) — test
  /// and shutdown hook, not needed in steady state.
  void drain();

  /// Pairs durably appended to the log by this sink.
  long long captured() const { return captured_.load(); }
  /// Pairs lost to a full queue, the max_records cap, or append failure.
  long long dropped() const { return dropped_.load(); }
  const SinkConfig& config() const { return config_; }

 private:
  /// What the dispatcher hands the writer: copies, because the request
  /// (and its layout) dies when the promise is fulfilled.
  struct Item {
    layout::Layout layout;
    layout::Assignment assignment;
    double score = 0.0;
  };

  void writer_loop();

  SinkConfig config_;
  TrainingLogWriter writer_;
  /// Records already in the log when this sink opened it (max_records
  /// counts them; writer_.appended() is this-process only).
  std::size_t preexisting_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes the writer
  std::condition_variable idle_cv_;  ///< wakes drain()
  std::deque<Item> queue_;
  bool stop_ = false;
  bool busy_ = false;  ///< writer holds an item outside the lock

  std::atomic<long long> seen_{0};  ///< eligible results (sampling basis)
  std::atomic<long long> captured_{0};
  std::atomic<long long> dropped_{0};

  obs::Counter& captured_counter_;
  obs::Counter& dropped_counter_;
  obs::Counter& bytes_counter_;

  std::thread writer_thread_;  ///< last member: starts after all state
};

}  // namespace ldmo::flywheel
