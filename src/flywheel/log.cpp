#include "flywheel/log.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/log.h"

namespace ldmo::flywheel {
namespace {

constexpr char kMagic[8] = {'L', 'D', 'M', 'O', 'F', 'W', 'L', '1'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;

std::size_t image_bytes(int image_size) {
  return static_cast<std::size_t>(image_size) * image_size * sizeof(float);
}

std::uint64_t score_bits(double score) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(score));
  std::memcpy(&bits, &score, sizeof(bits));
  return bits;
}

double score_from_bits(std::uint64_t bits) {
  double score = 0.0;
  std::memcpy(&score, &bits, sizeof(score));
  return score;
}

std::uint64_t pair_checksum(const TrainingPair& pair, int image_size) {
  common::Fnv1a h;
  h.bytes(pair.image.data(), image_bytes(image_size));
  const std::uint64_t bits = score_bits(pair.score);
  unsigned char b[8];
  for (int i = 0; i < 8; ++i)
    b[i] = static_cast<unsigned char>(bits >> (8 * i));
  h.bytes(b, sizeof(b));
  return h.digest();
}

void write_u32_le(std::ostream& out, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 4);
}

void write_u64_le(std::ostream& out, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t read_u32_le(std::istream& in) {
  unsigned char b[4] = {};
  in.read(reinterpret_cast<char*>(b), 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_le(std::istream& in) {
  unsigned char b[8] = {};
  in.read(reinterpret_cast<char*>(b), 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

/// Opens `path` for validated reading: checks magic and image size only
/// (size tolerance is the reader's job). `size_out` gets the file size.
int open_validated(const std::string& path, std::ifstream& in,
                   std::size_t& size_out) {
  in.open(path, std::ios::binary | std::ios::ate);
  require(in.good(), "flywheel log: cannot open " + path);
  size_out = static_cast<std::size_t>(in.tellg());
  require(size_out >= kHeaderBytes,
          "flywheel log: file shorter than header: " + path);
  in.seekg(0);
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  require(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
          "flywheel log: bad magic in " + path);
  const std::uint32_t image_size = read_u32_le(in);
  require(in.good() && image_size >= 8 && image_size <= 4096,
          "flywheel log: implausible image size in " + path);
  return static_cast<int>(image_size);
}

}  // namespace

std::size_t training_log_record_bytes(int image_size) {
  return image_bytes(image_size) + 2 * sizeof(std::uint64_t);
}

TrainingLogWriter::TrainingLogWriter(std::string path, int image_size)
    : path_(std::move(path)), image_size_(image_size) {
  require(image_size_ >= 8 && image_size_ <= 4096,
          "TrainingLogWriter: implausible image size");
  std::ifstream existing(path_, std::ios::binary);
  if (existing.good() &&
      existing.peek() != std::ifstream::traits_type::eof()) {
    existing.close();
    std::ifstream check;
    std::size_t size = 0;
    const int file_size = open_validated(path_, check, size);
    require(file_size == image_size_,
            "TrainingLogWriter: existing log " + path_ + " has image size " +
                std::to_string(file_size) + ", expected " +
                std::to_string(image_size_));
    check.close();
    // A torn tail (crashed append) is truncated away so the next append
    // starts on a whole-record boundary; the lost partial record was never
    // trustworthy anyway.
    const std::size_t record = training_log_record_bytes(image_size_);
    const std::size_t whole = (size - kHeaderBytes) / record;
    const std::size_t aligned = kHeaderBytes + whole * record;
    if (aligned != size) {
      log_warn("flywheel log: truncating torn tail of ", path_, " (",
               size - aligned, " stray bytes)");
      std::filesystem::resize_file(path_, aligned);
    }
    return;  // header already present, appends go to the end
  }
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  require(out.good(), "TrainingLogWriter: cannot create " + path_);
  out.write(kMagic, sizeof(kMagic));
  write_u32_le(out, static_cast<std::uint32_t>(image_size_));
  out.flush();
  require(out.good(), "TrainingLogWriter: header write failed for " + path_);
}

void TrainingLogWriter::append(const TrainingPair& pair) {
  const std::size_t n = static_cast<std::size_t>(image_size_) *
                        static_cast<std::size_t>(image_size_);
  require(pair.image.size() == n,
          "TrainingLogWriter::append: image size does not match header");
  fail::maybe_fail("flywheel.log.append", FlowStage::kCache);
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  require(out.good(), "TrainingLogWriter: cannot append to " + path_);
  out.write(reinterpret_cast<const char*>(pair.image.data()),
            static_cast<std::streamsize>(image_bytes(image_size_)));
  write_u64_le(out, score_bits(pair.score));
  write_u64_le(out, pair_checksum(pair, image_size_));
  out.flush();
  require(out.good(), "TrainingLogWriter: append failed for " + path_);
  ++appended_;
}

TrainingLog read_training_log(const std::string& path) {
  std::ifstream in;
  std::size_t size = 0;
  TrainingLog log;
  log.image_size = open_validated(path, in, size);
  const std::size_t record = training_log_record_bytes(log.image_size);
  const std::size_t payload = size - kHeaderBytes;
  const std::size_t count = payload / record;
  log.torn_tail = payload % record != 0;
  const std::size_t n = static_cast<std::size_t>(log.image_size) *
                        static_cast<std::size_t>(log.image_size);
  log.pairs.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    TrainingPair pair;
    pair.image.resize(n);
    in.read(reinterpret_cast<char*>(pair.image.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    pair.score = score_from_bits(read_u64_le(in));
    const std::uint64_t stored = read_u64_le(in);
    require(in.good(), "flywheel log: short read in " + path);
    if (stored != pair_checksum(pair, log.image_size)) {
      // Final record: a torn append that happened to land on a record
      // boundary. Anywhere earlier: bit rot — refuse the whole log.
      require(r + 1 == count,
              "flywheel log: checksum mismatch in record " +
                  std::to_string(r) + " of " + path);
      log.torn_tail = true;
      break;
    }
    log.pairs.push_back(std::move(pair));
  }
  return log;
}

std::size_t training_log_record_count(const std::string& path) {
  std::ifstream in;
  std::size_t size = 0;
  const int image_size = open_validated(path, in, size);
  return (size - kHeaderBytes) / training_log_record_bytes(image_size);
}

}  // namespace ldmo::flywheel
