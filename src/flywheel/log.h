// Append-only binary training log for the online-learning flywheel.
//
// The serve-time capture sink (sink.h) appends (decomposition image,
// actual ILT score) pairs here; the background fine-tuner (tuner.h) reads
// them back. Layout mirrors the warm-start corpus framing discipline
// (warmstart/corpus.h):
//
//   header:  magic "LDMOFWL1" (8 bytes) + u32 little-endian image_size
//   records: image_size^2 float32 grayscale decomposition image
//            + f64 actual score (little-endian IEEE-754 bit pattern)
//            + u64 FNV-1a checksum of the image and score bytes.
//
// Records are fixed-size, so the count derives from the file size. Unlike
// the corpus reader, the flywheel reader is TOLERANT OF A TORN TAIL: the
// log is appended by a live server that can crash (or hit the
// flywheel.log.append failpoint) mid-record, and losing the newest pair
// must not strand every previously captured one. A trailing partial record
// or a final record with a bad checksum is dropped and reported via
// TrainingLog::torn_tail; corruption anywhere BEFORE the tail still throws
// — that is bit rot, not a torn append, and must not train a model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldmo::flywheel {

/// One captured training pair: the flattened row-major [image_size^2]
/// grayscale decomposition image and the actual post-ILT printability
/// score (raw Eq. 9 units, lower = better).
struct TrainingPair {
  std::vector<float> image;
  double score = 0.0;
};

/// A validated in-memory training log.
struct TrainingLog {
  int image_size = 0;
  std::vector<TrainingPair> pairs;
  /// True when the file ended in a partial or checksum-failed final record
  /// (dropped from `pairs`). Expected after a crash mid-append; the next
  /// append overwrites nothing — the writer always appends at the end of
  /// the last WHOLE record boundary it can trust.
  bool torn_tail = false;
};

/// Appends pairs to `path`, creating the file (with header) when absent.
/// Opening an existing file validates magic and image size; a torn tail is
/// truncated away so subsequent appends land on a record boundary.
class TrainingLogWriter {
 public:
  TrainingLogWriter(std::string path, int image_size);

  /// Appends one pair (image must be image_size^2 floats). Runs the
  /// "flywheel.log.append" failpoint first, then writes and flushes, so a
  /// fired failpoint models a fault BEFORE any bytes land. Throws on I/O
  /// failure; a crash mid-write loses at most this record.
  void append(const TrainingPair& pair);

  int image_size() const { return image_size_; }
  std::size_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int image_size_ = 0;
  std::size_t appended_ = 0;
};

/// Reads a training log, dropping (and flagging) a torn tail. Throws
/// ldmo::Error on bad magic, implausible image size, or a checksum
/// mismatch anywhere before the final record.
TrainingLog read_training_log(const std::string& path);

/// Whole-record count of a log file from header and size alone (a torn
/// tail rounds down; header validation only).
std::size_t training_log_record_count(const std::string& path);

/// On-disk size of one record at this image size (sizing/telemetry).
std::size_t training_log_record_bytes(int image_size);

}  // namespace ldmo::flywheel
