#include "mpl/tpl.h"

#include <array>
#include <set>
#include <tuple>

#include "common/error.h"
#include "coverage/covering_array.h"

namespace ldmo::mpl {
namespace {

// The 6 permutations of {0, 1, 2}, indexed by a 6-level factor.
constexpr std::array<std::array<int, 3>, 6> kPermutations = {{
    {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};

int factorial(int k) {
  int f = 1;
  for (int i = 2; i <= k; ++i) f *= i;
  return f;
}

}  // namespace

TplGenerationResult generate_tpl_decompositions(
    const layout::Layout& layout, const TplGenerationConfig& config) {
  require(layout.pattern_count() > 0,
          "generate_tpl_decompositions: empty layout");
  require(config.mask_count == 3,
          "generate_tpl_decompositions: only mask_count == 3 is supported "
          "(permutation factors are hardcoded for 3 masks)");
  require(config.max_candidates >= 1,
          "generate_tpl_decompositions: bad max_candidates");

  TplGenerationResult result;
  result.classification = classify_patterns(layout, config.classify);
  const auto& sp = result.classification.sp;
  const auto& vp = result.classification.vp;
  const auto& np = result.classification.np;

  // Base k-coloring of the SP conflict graph; components enumerate the
  // orientation (permutation) degrees of freedom.
  const graph::Graph sp_graph =
      build_conflict_graph(layout, sp, config.classify.nmin_nm);
  result.sp_coloring = graph::greedy_k_coloring(sp_graph, config.mask_count);
  std::tie(result.sp_component, result.sp_component_count) =
      sp_graph.connected_components();

  // Mixed-arity factors: one 6-level permutation factor per SP component,
  // then ternary factors for VP patterns (Arrs1, three-wise); ternary
  // factors for NP patterns (Arrs2, pairwise).
  std::vector<int> arities1(
      static_cast<std::size_t>(result.sp_component_count),
      factorial(config.mask_count));
  arities1.insert(arities1.end(), vp.size(), config.mask_count);
  const std::vector<int> arities2(np.size(), config.mask_count);

  coverage::GeneratorOptions options1;
  options1.seed = config.seed;
  coverage::GeneratorOptions options2;
  options2.seed = config.seed + 1;
  const coverage::CoveringArray arr1 = coverage::generate_covering_array_mixed(
      arities1, config.strength_sp_vp, options1);
  const coverage::CoveringArray arr2 = coverage::generate_covering_array_mixed(
      arities2, config.strength_np, options2);

  std::set<layout::Assignment> seen;
  for (const auto& row1 : arr1.rows) {
    for (const auto& row2 : arr2.rows) {
      layout::Assignment assignment(
          static_cast<std::size_t>(layout.pattern_count()), 0);
      for (std::size_t i = 0; i < sp.size(); ++i) {
        const int perm = row1[static_cast<std::size_t>(
            result.sp_component[i])];
        assignment[static_cast<std::size_t>(sp[i])] =
            kPermutations[static_cast<std::size_t>(perm)]
                         [static_cast<std::size_t>(
                             result.sp_coloring.color[i])];
      }
      for (std::size_t i = 0; i < vp.size(); ++i)
        assignment[static_cast<std::size_t>(vp[i])] =
            row1[static_cast<std::size_t>(result.sp_component_count) + i];
      for (std::size_t i = 0; i < np.size(); ++i)
        assignment[static_cast<std::size_t>(np[i])] = row2[i];

      assignment = layout::canonicalize_k(std::move(assignment),
                                          config.mask_count);
      if (seen.insert(assignment).second) {
        result.candidates.push_back(std::move(assignment));
        if (static_cast<int>(result.candidates.size()) >=
            config.max_candidates)
          return result;
      }
    }
  }
  LDMO_ASSERT(!result.candidates.empty());
  return result;
}

bool respects_tpl_separation(const TplGenerationResult& result,
                             const layout::Layout& layout,
                             const layout::Assignment& assignment,
                             double nmin_nm) {
  const auto& sp = result.classification.sp;
  for (std::size_t i = 0; i < sp.size(); ++i) {
    for (std::size_t j = i + 1; j < sp.size(); ++j) {
      const double d = geometry::rect_distance(
          layout.patterns[static_cast<std::size_t>(sp[i])].shape,
          layout.patterns[static_cast<std::size_t>(sp[j])].shape);
      if (d > nmin_nm) continue;
      // Conflict pair: separated in the candidate iff the base coloring
      // separated it (permutations preserve equality structure).
      const bool base_separated =
          result.sp_coloring.color[i] != result.sp_coloring.color[j];
      const bool candidate_separated =
          assignment[static_cast<std::size_t>(sp[i])] !=
          assignment[static_cast<std::size_t>(sp[j])];
      if (base_separated != candidate_separated) return false;
    }
  }
  return true;
}

}  // namespace ldmo::mpl
