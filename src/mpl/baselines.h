// Baseline layout decomposers for the Table I comparison flows.
//
// Both pick ONE decomposition from graph structure alone — no printability
// feedback — which is exactly the deficiency the paper's learned selection
// addresses:
//  - SpacingUniformityDecomposer models the flow of [16] (SUALD): color the
//    conflict graph, then locally improve spacing uniformity (avoid close
//    same-mask pairs).
//  - BalancedDecomposer models the flow of [17] (Yu-Pan): color the conflict
//    graph while balancing pattern counts across masks.
//  - ExhaustiveDecomposer enumerates all 2^(n-1) canonical assignments —
//    usable as an oracle on small layouts (tests, ablations).
#pragma once

#include <vector>

#include "layout/layout.h"
#include "mpl/classify.h"

namespace ldmo::mpl {

/// SUALD-like single-shot decomposer.
class SpacingUniformityDecomposer {
 public:
  explicit SpacingUniformityDecomposer(ClassifyConfig config = {})
      : config_(config) {}

  /// Returns the canonicalized chosen assignment.
  layout::Assignment decompose(const layout::Layout& layout) const;

 private:
  ClassifyConfig config_;
};

/// Yu-Pan-like balanced single-shot decomposer.
class BalancedDecomposer {
 public:
  explicit BalancedDecomposer(ClassifyConfig config = {})
      : config_(config) {}

  layout::Assignment decompose(const layout::Layout& layout) const;

 private:
  ClassifyConfig config_;
};

/// All canonical assignments of a layout (2^(n-1)). Throws beyond
/// `max_patterns` to prevent accidental blowups.
std::vector<layout::Assignment> enumerate_all_decompositions(
    const layout::Layout& layout, int max_patterns = 16);

}  // namespace ldmo::mpl
