#include "mpl/classify.h"

#include "common/error.h"
#include "geometry/spatial_index.h"

namespace ldmo::mpl {

PatternClassification classify_patterns(const layout::Layout& layout,
                                        const ClassifyConfig& config) {
  require(config.nmin_nm > 0.0 && config.nmax_nm > config.nmin_nm,
          "classify_patterns: need 0 < nmin < nmax");
  PatternClassification result;
  result.classes.resize(static_cast<std::size_t>(layout.pattern_count()));
  for (const layout::Pattern& p : layout.patterns) {
    const double d = layout.nearest_distance(p.id);
    PatternClass cls;
    if (d <= config.nmin_nm)
      cls = PatternClass::Separated;
    else if (d <= config.nmax_nm)
      cls = PatternClass::Violated;
    else
      cls = PatternClass::Normal;
    result.classes[static_cast<std::size_t>(p.id)] = cls;
    switch (cls) {
      case PatternClass::Separated: result.sp.push_back(p.id); break;
      case PatternClass::Violated: result.vp.push_back(p.id); break;
      case PatternClass::Normal: result.np.push_back(p.id); break;
    }
  }
  return result;
}

graph::Graph build_conflict_graph(const layout::Layout& layout,
                                  const std::vector<int>& ids,
                                  double max_distance_nm) {
  graph::Graph g(static_cast<int>(ids.size()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const double d = geometry::rect_distance(
          layout.patterns[static_cast<std::size_t>(ids[i])].shape,
          layout.patterns[static_cast<std::size_t>(ids[j])].shape);
      if (d <= max_distance_nm)
        g.add_edge(static_cast<int>(i), static_cast<int>(j), d);
    }
  }
  return g;
}

}  // namespace ldmo::mpl
