#include "mpl/decomposition_generator.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/failpoint.h"
#include "coverage/covering_array.h"

namespace ldmo::mpl {
namespace {

using Row = std::vector<std::uint8_t>;

// Canonicalizes a covering-array row by its first factor (flip the whole row
// when factor 0 is on mask 2 — the per-array version of Fig. 4(c)) and
// deduplicates, preserving first-seen order.
std::vector<Row> merge_rows(std::vector<Row> rows, bool canonicalize) {
  std::vector<Row> merged;
  std::set<Row> seen;
  for (Row& row : rows) {
    if (canonicalize && !row.empty() && row[0] == 1)
      for (auto& v : row) v = 1 - v;
    if (seen.insert(row).second) merged.push_back(std::move(row));
  }
  return merged;
}

}  // namespace

GenerationResult generate_decompositions(const layout::Layout& layout,
                                         const GenerationConfig& config) {
  require(layout.pattern_count() > 0,
          "generate_decompositions: empty layout");
  require(config.max_candidates >= 1,
          "generate_decompositions: max_candidates must be >= 1");
  fail::maybe_fail("mpl.generate", FlowStage::kDecompose);

  GenerationResult result;
  result.classification = classify_patterns(layout, config.classify);
  const auto& sp = result.classification.sp;
  const auto& vp = result.classification.vp;
  const auto& np = result.classification.np;

  // MST over the SP conflict graph; adjacent tree vertices must separate.
  const graph::Graph sp_graph =
      build_conflict_graph(layout, sp, config.classify.nmin_nm);
  result.sp_mst = graph::minimum_spanning_forest(sp_graph);
  result.sp_component = result.sp_mst.component;
  result.sp_component_count = result.sp_mst.component_count;
  const std::vector<int> sp_color = graph::two_color_forest(
      static_cast<int>(sp.size()), result.sp_mst.edges);

  // Factor layout: Arrs1 = one orientation factor per SP component followed
  // by one factor per VP pattern (three-wise); Arrs2 = NP patterns
  // (pairwise).
  const int factors1 =
      result.sp_component_count + static_cast<int>(vp.size());
  const int factors2 = static_cast<int>(np.size());

  coverage::GeneratorOptions options1;
  options1.seed = config.seed;
  coverage::GeneratorOptions options2;
  options2.seed = config.seed + 1;
  const coverage::CoveringArray arr1 = coverage::generate_covering_array(
      factors1, config.strength_sp_vp, options1);
  const coverage::CoveringArray arr2 = coverage::generate_covering_array(
      factors2, config.strength_np, options2);

  const std::vector<Row> merged1 = merge_rows(arr1.rows, true);
  const std::vector<Row> merged2 = merge_rows(arr2.rows, false);
  result.arrs1_rows = merged1.size();
  result.arrs2_rows = merged2.size();

  // Expand the Cartesian product of the merged arrays to full assignments.
  std::set<layout::Assignment> seen;
  for (const Row& row1 : merged1) {
    for (const Row& row2 : merged2) {
      layout::Assignment assignment(
          static_cast<std::size_t>(layout.pattern_count()), 0);
      for (std::size_t i = 0; i < sp.size(); ++i) {
        const int orientation =
            row1[static_cast<std::size_t>(result.sp_component[i])];
        assignment[static_cast<std::size_t>(sp[i])] =
            sp_color[i] ^ orientation;
      }
      for (std::size_t i = 0; i < vp.size(); ++i)
        assignment[static_cast<std::size_t>(vp[i])] =
            row1[static_cast<std::size_t>(result.sp_component_count) + i];
      for (std::size_t i = 0; i < np.size(); ++i)
        assignment[static_cast<std::size_t>(np[i])] = row2[i];

      // Global dual canonicalization (pattern 0 on M1) + dedup: the
      // per-array merge removes most duplicates, this removes the rest.
      assignment = layout::canonicalize(std::move(assignment));
      if (seen.insert(assignment).second) {
        result.candidates.push_back(std::move(assignment));
        if (static_cast<int>(result.candidates.size()) >=
            config.max_candidates)
          return result;
      }
    }
  }
  LDMO_ASSERT(!result.candidates.empty());
  return result;
}

bool respects_mst_separation(const GenerationResult& result,
                             const layout::Assignment& assignment) {
  const auto& sp = result.classification.sp;
  for (const graph::Edge& e : result.sp_mst.edges) {
    const int pattern_u = sp[static_cast<std::size_t>(e.u)];
    const int pattern_v = sp[static_cast<std::size_t>(e.v)];
    if (assignment[static_cast<std::size_t>(pattern_u)] ==
        assignment[static_cast<std::size_t>(pattern_v)])
      return false;
  }
  return true;
}

}  // namespace ldmo::mpl
