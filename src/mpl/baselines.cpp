#include "mpl/baselines.h"

#include <numeric>

#include "common/error.h"
#include "graph/coloring.h"

namespace ldmo::mpl {
namespace {

// Conflict graph over ALL patterns with edges up to nmin only: the
// rule-based decomposers of [16] and [17] resolve design-rule *conflicts*
// (sub-nmin spacings). Sub-resolution proximity in the VP band (nmin-nmax)
// is invisible to them — exactly the blind spot the paper's learned
// selection exploits.
graph::Graph full_conflict_graph(const layout::Layout& layout,
                                 const ClassifyConfig& config) {
  std::vector<int> all_ids(static_cast<std::size_t>(layout.pattern_count()));
  std::iota(all_ids.begin(), all_ids.end(), 0);
  return build_conflict_graph(layout, all_ids, config.nmin_nm);
}

}  // namespace

layout::Assignment SpacingUniformityDecomposer::decompose(
    const layout::Layout& layout) const {
  require(layout.pattern_count() > 0, "decompose: empty layout");
  const graph::Graph g = full_conflict_graph(layout, config_);
  const graph::ColoringResult coloring = graph::spacing_uniformity_coloring(g);
  return layout::canonicalize(coloring.color);
}

layout::Assignment BalancedDecomposer::decompose(
    const layout::Layout& layout) const {
  require(layout.pattern_count() > 0, "decompose: empty layout");
  const graph::Graph g = full_conflict_graph(layout, config_);
  const graph::ColoringResult coloring = graph::balanced_coloring(g);
  return layout::canonicalize(coloring.color);
}

std::vector<layout::Assignment> enumerate_all_decompositions(
    const layout::Layout& layout, int max_patterns) {
  const int n = layout.pattern_count();
  require(n >= 1, "enumerate_all_decompositions: empty layout");
  require(n <= max_patterns,
          "enumerate_all_decompositions: too many patterns (" +
              std::to_string(n) + " > " + std::to_string(max_patterns) + ")");
  std::vector<layout::Assignment> all;
  const std::size_t count = std::size_t{1} << (n - 1);  // pattern 0 pinned
  all.reserve(count);
  for (std::size_t bits = 0; bits < count; ++bits) {
    layout::Assignment assignment(static_cast<std::size_t>(n), 0);
    for (int p = 1; p < n; ++p)
      assignment[static_cast<std::size_t>(p)] =
          static_cast<int>((bits >> (p - 1)) & 1u);
    all.push_back(std::move(assignment));
  }
  return all;
}

}  // namespace ldmo::mpl
