// Pattern classification (paper Eq. 6) and conflict-graph construction.
//
// Every pattern is classified by the distance d to its nearest neighbor:
//   d <= nmin          -> SP (separated pattern: printing next to its
//                          neighbor on one mask violates)
//   nmin < d <= nmax   -> VP (violated pattern: printability declines)
//   nmax < d           -> NP (normal pattern: negligible interaction)
// with the paper's nmin = 80nm, nmax = 98nm.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "layout/layout.h"

namespace ldmo::mpl {

enum class PatternClass { Separated, Violated, Normal };

/// Classification thresholds (paper Section III-A).
struct ClassifyConfig {
  double nmin_nm = 80.0;
  double nmax_nm = 98.0;
};

/// Result of classify_patterns().
struct PatternClassification {
  /// Class per pattern id.
  std::vector<PatternClass> classes;
  /// Pattern ids per class, ascending.
  std::vector<int> sp;
  std::vector<int> vp;
  std::vector<int> np;
};

/// Applies Eq. 6 to every pattern.
PatternClassification classify_patterns(const layout::Layout& layout,
                                        const ClassifyConfig& config = {});

/// Conflict graph over the pattern subset `ids`: vertices are indices into
/// `ids` (not pattern ids), and an edge connects every pair of subset
/// patterns with edge-to-edge distance <= max_distance_nm, weighted by that
/// distance (Fig. 3(a)).
graph::Graph build_conflict_graph(const layout::Layout& layout,
                                  const std::vector<int>& ids,
                                  double max_distance_nm);

}  // namespace ldmo::mpl
