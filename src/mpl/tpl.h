// Triple-patterning decomposition generation (MPL extension).
//
// The paper's Algorithm 1 generalizes naturally: the SP conflict graph is
// k-colored per connected component (k = 3), each component contributes a
// color-permutation factor (3! = 6 orientations of its base coloring), and
// VP / NP patterns contribute ternary factors. Candidates come from
// mixed-arity covering arrays (three-wise for SP components + VP, pairwise
// for NP) and are canonicalized under mask-permutation symmetry.
//
// TPL resolves layouts double patterning cannot: an odd cycle of
// conflicts (e.g. a triangle of mutually-sub-nmin contacts) is
// 2-uncolorable but 3-colorable.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.h"
#include "layout/layout.h"
#include "mpl/classify.h"

namespace ldmo::mpl {

struct TplGenerationConfig {
  ClassifyConfig classify;
  int mask_count = 3;
  int strength_sp_vp = 3;
  int strength_np = 2;
  std::uint64_t seed = 7;
  int max_candidates = 4096;
};

struct TplGenerationResult {
  PatternClassification classification;
  /// Base k-coloring of the SP conflict graph (indexed like
  /// classification.sp) and its residual conflicts.
  graph::ColoringResult sp_coloring;
  /// Component id per SP pattern and component count.
  std::vector<int> sp_component;
  int sp_component_count = 0;
  /// Canonicalized unique candidates; values in [0, mask_count).
  std::vector<layout::Assignment> candidates;
};

/// Generalized Algorithm 1 for k masks.
TplGenerationResult generate_tpl_decompositions(
    const layout::Layout& layout, const TplGenerationConfig& config = {});

/// True if `assignment` separates every SP conflict edge that the base
/// coloring separates (the invariant the permutation factors preserve).
bool respects_tpl_separation(const TplGenerationResult& result,
                             const layout::Layout& layout,
                             const layout::Assignment& assignment,
                             double nmin_nm = 80.0);

}  // namespace ldmo::mpl
