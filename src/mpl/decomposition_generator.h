// Decomposition candidate generation (paper Algorithm 1 / Section III-A).
//
// Pipeline:
//  1. Classify patterns into SP / VP / NP (Eq. 6).
//  2. Build the SP conflict graph (pairs closer than nmin), solve the MST
//     per connected component (Fig. 3), and 2-color each tree: MST-adjacent
//     patterns land on opposite masks, so each component contributes ONE
//     binary degree of freedom (its orientation) instead of one per pattern.
//  3. Factors for the covering arrays: one per SP component plus one per VP
//     pattern -> three-wise array (Arrs1); NP patterns -> pairwise array
//     (Arrs2). n-wise keeps the candidate count near-minimal while every
//     local combination of up to n interacting patterns still appears.
//  4. Expand factor rows to full assignments, canonicalize the mask-symmetry
//     dual (pattern 0 pinned to M1, Fig. 4(c)) and deduplicate. The final
//     candidate list is the Cartesian product of the merged arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/mst.h"
#include "layout/layout.h"
#include "mpl/classify.h"

namespace ldmo::mpl {

/// Generation knobs. Strengths follow the paper (3-wise for SP components +
/// VP, 2-wise for NP).
struct GenerationConfig {
  ClassifyConfig classify;
  int strength_sp_vp = 3;
  int strength_np = 2;
  /// Seed for the covering-array generator (candidates are deterministic).
  std::uint64_t seed = 7;
  /// Hard cap on emitted candidates (safety valve for dense layouts; the
  /// paper's n-wise construction keeps counts far below this anyway).
  int max_candidates = 4096;
};

/// Everything generate_decompositions() learned about the layout.
struct GenerationResult {
  PatternClassification classification;
  /// MST solution of the SP conflict graph.
  graph::MstResult sp_mst;
  /// Component label per SP pattern (aligned with classification.sp).
  std::vector<int> sp_component;
  int sp_component_count = 0;
  /// Deduplicated, canonicalized candidate assignments.
  std::vector<layout::Assignment> candidates;
  /// Array sizes before combination (paper: candidate count should be
  /// |mergedArrs1| x |mergedArrs2| up to global dual dedup).
  std::size_t arrs1_rows = 0;
  std::size_t arrs2_rows = 0;
};

/// Runs Algorithm 1 on a layout. Always returns at least one candidate
/// (layouts with no conflicts yield the all-on-M1-orientation candidates of
/// the NP array alone).
GenerationResult generate_decompositions(const layout::Layout& layout,
                                         const GenerationConfig& config = {});

/// True if `assignment` separates every SP-MST edge (the hard constraint
/// all generated candidates satisfy by construction).
bool respects_mst_separation(const GenerationResult& result,
                             const layout::Assignment& assignment);

}  // namespace ldmo::mpl
