// Compare all four LDMO flows on a handful of layouts — a miniature
// Table I that runs in well under a minute (64 px lithography, no CNN
// training; ours uses the raw-print predictor for candidate ranking).
#include <cstdio>

#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "mpl/baselines.h"

int main() {
  using namespace ldmo;

  litho::LithoConfig litho_cfg;
  litho_cfg.grid_size = 64;
  litho_cfg.pixel_nm = 16.0;
  const litho::LithoSimulator simulator(litho_cfg);

  core::TwoStageFlow suald(
      simulator,
      [](const layout::Layout& l) {
        return mpl::SpacingUniformityDecomposer().decompose(l);
      });
  core::TwoStageFlow balanced(
      simulator,
      [](const layout::Layout& l) {
        return mpl::BalancedDecomposer().decompose(l);
      });
  core::UnifiedGreedyFlow unified(simulator, {});
  core::RawPrintPredictor predictor(simulator);
  core::LdmoFlow ours(simulator, predictor, {});

  layout::LayoutGenerator generator;
  std::printf("%-6s | %-13s | %-13s | %-13s | %-13s\n", "seed",
              "SUALD+ILT", "Balanced+ILT", "Unified[10]", "Ours");
  std::printf("%-6s | %5s %6s | %5s %6s | %5s %6s | %5s %6s\n", "", "EPE",
              "s", "EPE", "s", "EPE", "s", "EPE", "s");
  for (std::uint64_t seed : {201, 202, 203, 204}) {
    const layout::Layout l = generator.generate(seed);
    const auto r1 = suald.run(l);
    const auto r2 = balanced.run(l);
    const auto r3 = unified.run(l);
    const auto r4 = ours.run(l);
    std::printf(
        "%-6llu | %5d %6.2f | %5d %6.2f | %5d %6.2f | %5d %6.2f\n",
        static_cast<unsigned long long>(seed),
        r1.ilt.report.epe.violation_count, r1.total_seconds,
        r2.ilt.report.epe.violation_count, r2.total_seconds,
        r3.ilt.report.epe.violation_count, r3.total_seconds,
        r4.ilt.report.epe.violation_count, r4.total_seconds);
  }
  return 0;
}
