// Command-line front end for the library.
//
//   ldmo_cli generate --seed 42 --out clip.layout
//       Generate a synthetic contact layout and write it as text.
//   ldmo_cli inspect clip.layout
//       Pattern classification, conflict structure, candidate counts.
//   ldmo_cli run clip.layout [--flow ours|suald|balanced|unified]
//       Run a full LDMO flow and report printability (writes PGM images).
//
// All subcommands use the quick 64-pixel lithography model so they respond
// in seconds; the benches use the experiment-grade 128-pixel model.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "layout/io.h"
#include "layout/raster.h"
#include "mpl/baselines.h"
#include "mpl/decomposition_generator.h"

namespace {

using namespace ldmo;

litho::LithoConfig cli_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  return cfg;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ldmo_cli generate [--seed N] [--out FILE]\n"
               "  ldmo_cli inspect FILE\n"
               "  ldmo_cli run FILE [--flow ours|suald|balanced|unified]\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

int cmd_generate(int argc, char** argv) {
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42")));
  const std::string out = flag_value(argc, argv, "--out", "clip.layout");
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(seed);
  layout::write_layout_text(l, out);
  std::printf("wrote %s: %d patterns in a %lldnm clip\n", out.c_str(),
              l.pattern_count(), static_cast<long long>(l.clip.width()));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const layout::Layout l = layout::read_layout_text(argv[2]);
  std::printf("%s: %d patterns\n", l.name.c_str(), l.pattern_count());
  const mpl::PatternClassification classes = mpl::classify_patterns(l);
  std::printf("classes: %zu SP, %zu VP, %zu NP\n", classes.sp.size(),
              classes.vp.size(), classes.np.size());
  const mpl::GenerationResult generated = mpl::generate_decompositions(l);
  std::printf("SP MST: %zu edges, %d components\n",
              generated.sp_mst.edges.size(), generated.sp_component_count);
  std::printf("candidates: %zu (Arrs1 %zu x Arrs2 %zu)\n",
              generated.candidates.size(), generated.arrs1_rows,
              generated.arrs2_rows);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const layout::Layout l = layout::read_layout_text(argv[2]);
  const std::string flow_name = flag_value(argc, argv, "--flow", "ours");
  const litho::LithoSimulator simulator(cli_litho());

  GridF mask1, mask2, response;
  litho::PrintabilityReport report;
  double seconds = 0.0;
  if (flow_name == "ours") {
    core::RawPrintPredictor predictor(simulator);
    core::LdmoFlow flow(simulator, predictor, {});
    core::LdmoResult r = flow.run(l);
    mask1 = std::move(r.ilt.mask1);
    mask2 = std::move(r.ilt.mask2);
    response = std::move(r.ilt.response);
    report = r.ilt.report;
    seconds = r.total_seconds;
  } else if (flow_name == "suald" || flow_name == "balanced") {
    core::TwoStageFlow flow(
        simulator, [&flow_name](const layout::Layout& layout) {
          if (flow_name == "suald")
            return mpl::SpacingUniformityDecomposer().decompose(layout);
          return mpl::BalancedDecomposer().decompose(layout);
        });
    core::BaselineFlowResult r = flow.run(l);
    mask1 = std::move(r.ilt.mask1);
    mask2 = std::move(r.ilt.mask2);
    response = std::move(r.ilt.response);
    report = r.ilt.report;
    seconds = r.total_seconds;
  } else if (flow_name == "unified") {
    core::UnifiedGreedyFlow flow(simulator, {});
    core::BaselineFlowResult r = flow.run(l);
    mask1 = std::move(r.ilt.mask1);
    mask2 = std::move(r.ilt.mask2);
    response = std::move(r.ilt.response);
    report = r.ilt.report;
    seconds = r.total_seconds;
  } else {
    return usage();
  }

  std::printf("flow %-8s: %d EPE violations, %d print violations, "
              "L2 %.1f, score %.1f (%.2fs)\n",
              flow_name.c_str(), report.epe.violation_count,
              report.violations.total(), report.l2, report.score(), seconds);
  layout::write_pgm(mask1, "cli_mask1.pgm");
  layout::write_pgm(mask2, "cli_mask2.pgm");
  layout::write_pgm(response, "cli_print.pgm");
  std::printf("wrote cli_mask1.pgm cli_mask2.pgm cli_print.pgm\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "inspect") == 0) return cmd_inspect(argc, argv);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
