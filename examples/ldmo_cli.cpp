// Command-line front end for the library.
//
//   ldmo_cli generate --seed 42 --out clip.layout
//       Generate a synthetic contact layout and write it as text.
//   ldmo_cli inspect clip.layout
//       Pattern classification, conflict structure, candidate counts.
//   ldmo_cli run clip.layout [--flow ours|suald|balanced|unified]
//            [--report run.json] [--log-level LEVEL]
//       Run a full LDMO flow and report printability (writes PGM images).
//       --report enables span tracing and writes a structured JSON run
//       report (metrics, span tree, per-iteration ILT trace).
//   ldmo_cli validate-report run.json
//       Parse a run report and check its structure; exit 0 iff valid.
//   ldmo_cli warmstart-harvest --out corpus.bin [--clips N]
//       Replay the flow over generated clips and append (target,
//       decomposition, optimized-mask) training triples to a corpus.
//   ldmo_cli warmstart-train --corpus corpus.bin --out model.weights
//       Train the MaskNet warm-start model on a harvested corpus.
//   ldmo_cli run clip.layout --warm-start model.weights
//       Seed ILT from the learned model at a halved iteration budget.
//
// All subcommands use the quick 64-pixel lithography model so they respond
// in seconds; the benches use the experiment-grade 128-pixel model.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/timer.h"
#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "flywheel/log.h"
#include "flywheel/sink.h"
#include "flywheel/tuner.h"
#include "kernels/kernels.h"
#include "layout/generator.h"
#include "layout/io.h"
#include "layout/raster.h"
#include "mpl/baselines.h"
#include "mpl/decomposition_generator.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/router.h"
#include "obs/report.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"
#include "warmstart/corpus.h"
#include "warmstart/harvest.h"
#include "warmstart/train.h"
#include "warmstart/warm_start.h"

namespace {

using namespace ldmo;

litho::LithoConfig cli_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  return cfg;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ldmo_cli generate [--seed N] [--out FILE]\n"
               "  ldmo_cli inspect FILE\n"
               "  ldmo_cli run FILE [--flow ours|suald|balanced|unified]\n"
               "                    [--report OUT.json] [--log-level LEVEL]\n"
               "                    [--threads N] [--warm-start WEIGHTS]\n"
               "                    [--warm-iters N] [--warm-width W]\n"
               "  ldmo_cli validate-report FILE.json\n"
               "  ldmo_cli warmstart-harvest [--out CORPUS] [--clips N]\n"
               "                    [--seed0 S] [--sampling]\n"
               "                    [--oversample K] [--threads N]\n"
               "  ldmo_cli warmstart-train [--corpus CORPUS] [--out WEIGHTS]\n"
               "                    [--epochs E] [--batch B] [--width W]\n"
               "                    [--lr RATE] [--threads N]\n"
               "  ldmo_cli serve-bench [--requests N] [--unique K]\n"
               "                    [--clients C] [--dispatchers D]\n"
               "                    [--deadline-ms MS] [--no-cache]\n"
               "                    [--no-batch] [--report OUT.json]\n"
               "                    [--threads N] [--inject]\n"
               "                    [--inject-prob P] [--inject-seed S]\n"
               "                    [--admin-port P] [--admin-linger-ms MS]\n"
               "                    [--net-workers W]\n"
               "  ldmo_cli serve [--listen PORT] [--dispatchers D]\n"
               "                    [--grid N] [--pixel NM]\n"
               "                    [--weights FILE] [--snapshot FILE]\n"
               "                    [--warm-start WEIGHTS] [--warm-iters N]\n"
               "                    [--warm-width W]\n"
               "                    [--flywheel LOG] [--flywheel-min-new N]\n"
               "                    [--flywheel-sample K]\n"
               "                    [--flywheel-poll-ms MS]\n"
               "                    [--flywheel-epochs E]\n"
               "                    [--admin-port P] [--threads N]\n"
               "  ldmo_cli route --workers P1,P2,... [--listen PORT]\n"
               "                    [--admin-port P]\n"
               "  ldmo_cli net-submit FILE --port P [--deadline-ms MS]\n"
               "  ldmo_cli net-stats --port P\n"
               "  ldmo_cli swap-weights --port P [--weights FILE]\n"
               "                    [--version N] [--warm-start FILE]\n"
               "  ldmo_cli flywheel-stats --log FILE\n"
               "  ldmo_cli flywheel-train --log FILE --out WEIGHTS\n"
               "                    [--weights INCUMBENT] [--min-new N]\n"
               "                    [--epochs E] [--batch B] [--lr RATE]\n"
               "\n"
               "serve/route run until SIGINT/SIGTERM and print\n"
               "'listening on port N' once bound; --listen 0 (default)\n"
               "picks a free port. serve-bench --net-workers W spins an\n"
               "in-process W-worker cluster behind a consistent-hash\n"
               "router and drives it over the wire protocol (--inject\n"
               "then drops connections mid-frame instead of arming flow\n"
               "faults).\n"
               "LEVEL: debug|info|warn|error|off (also honored from the\n"
               "LDMO_LOG_LEVEL environment variable)\n"
               "--threads: parallelism budget (default: all hardware\n"
               "threads); results are bit-identical for any value\n"
               "--backend: compute kernels (generic|avx2|avx512|neon|\n"
               "auto, default auto; also LDMO_BACKEND env var)\n"
               "--warm-start: load trained MaskNet weights and seed every\n"
               "ILT attempt from the learned P fields at a --warm-iters\n"
               "budget (default 25, half the cold 50); --warm-width must\n"
               "match the trained model's base width (default 8). Only\n"
               "the 'ours' flow and serve consult the model; without the\n"
               "flag the paper-faithful cold init runs unchanged.\n"
               "--flywheel: online-learning loop on the serve daemon —\n"
               "capture completed non-degraded runs to LOG, background\n"
               "fine-tune the predictor CNN on them, and hot-swap the\n"
               "candidate in (blue/green, cache keys retired) only when it\n"
               "beats the incumbent's held-out rank correlation\n"
               "--admin-port: serve live telemetry on 127.0.0.1:P\n"
               "(/metrics /healthz /readyz /varz /trace /flightrecorder;\n"
               "0 picks a free port); --admin-linger-ms keeps the server\n"
               "up after the bench for manual scraping\n"
               "LDMO_LOG_FORMAT=json switches logs to one JSON object\n"
               "per line\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) {
      if (i + 1 >= argc)
        throw std::runtime_error(std::string(name) + " requires a value");
      return argv[i + 1];
    }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

void apply_log_level_flag(int argc, char** argv) {
  const char* level = flag_value(argc, argv, "--log-level", nullptr);
  if (!level) return;
  // parse_log_level falls back silently; parsing against two different
  // fallbacks distinguishes "recognized" from "fell back" without
  // duplicating the level-name table here.
  const LogLevel a = parse_log_level(level, LogLevel::Debug);
  const LogLevel b = parse_log_level(level, LogLevel::Off);
  if (a != b)
    throw std::runtime_error(std::string("unknown log level '") + level +
                             "' (want debug|info|warn|error|off)");
  set_log_level(a);
}

int cmd_generate(int argc, char** argv) {
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42")));
  const std::string out = flag_value(argc, argv, "--out", "clip.layout");
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(seed);
  layout::write_layout_text(l, out);
  std::printf("wrote %s: %d patterns in a %lldnm clip\n", out.c_str(),
              l.pattern_count(), static_cast<long long>(l.clip.width()));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const layout::Layout l = layout::read_layout_text(argv[2]);
  std::printf("%s: %d patterns\n", l.name.c_str(), l.pattern_count());
  const mpl::PatternClassification classes = mpl::classify_patterns(l);
  std::printf("classes: %zu SP, %zu VP, %zu NP\n", classes.sp.size(),
              classes.vp.size(), classes.np.size());
  const mpl::GenerationResult generated = mpl::generate_decompositions(l);
  std::printf("SP MST: %zu edges, %d components\n",
              generated.sp_mst.edges.size(), generated.sp_component_count);
  std::printf("candidates: %zu (Arrs1 %zu x Arrs2 %zu)\n",
              generated.candidates.size(), generated.arrs1_rows,
              generated.arrs2_rows);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const layout::Layout l = layout::read_layout_text(argv[2]);
  const std::string flow_name = flag_value(argc, argv, "--flow", "ours");
  const char* report_path = flag_value(argc, argv, "--report", nullptr);
  const char* warm_path = flag_value(argc, argv, "--warm-start", nullptr);
  if (warm_path && flow_name != "ours")
    throw std::runtime_error("--warm-start requires --flow ours");
  if (report_path) {
    obs::set_tracing_enabled(true);
    obs::tracer().clear();
    obs::registry().reset();
  }
  const litho::LithoSimulator simulator(cli_litho());

  GridF mask1, mask2, response;
  litho::PrintabilityReport report;
  double seconds = 0.0;
  int candidates_generated = 0, candidates_tried = 0;
  int iterations_run = 0;
  bool warm_started = false;
  PhaseTimer phase_timing;
  {
    obs::Span cli_span("cli.run");
    cli_span.attr("flow", flow_name);
    cli_span.attr("layout", l.name);
    if (flow_name == "ours") {
      core::LdmoResult r;
      if (warm_path) {
        // Learned warm start: a FlowEngine session owns the stack so the
        // shared MaskNet can be installed once; every speculative ILT
        // attempt is seeded from its prediction and runs at the halved
        // --warm-iters budget instead of the cold 50.
        warmstart::MaskNetConfig net_cfg;
        net_cfg.grid_size = cli_litho().grid_size;
        net_cfg.base_width =
            std::atoi(flag_value(argc, argv, "--warm-width", "8"));
        auto warm = std::make_shared<warmstart::MaskWarmStart>(net_cfg);
        warm->load(warm_path);
        core::FlowEngineConfig engine_cfg;
        engine_cfg.litho = cli_litho();
        engine_cfg.flow.warm_start.enabled = true;
        engine_cfg.flow.warm_start.max_iterations =
            std::atoi(flag_value(argc, argv, "--warm-iters", "25"));
        core::FlowEngine engine(engine_cfg);
        engine.set_warm_start(warm);
        r = engine.run(l);
      } else {
        core::RawPrintPredictor predictor(simulator);
        core::LdmoFlow flow(simulator, predictor, {});
        r = flow.run(l);
      }
      if (r.failed) {
        // e.g. an LDMO_FAILPOINTS-armed site fired: report the stage
        // instead of writing empty masks.
        std::fprintf(stderr, "run failed in stage %s: %s\n",
                     stage_name(r.error.stage), r.error.message.c_str());
        return 1;
      }
      mask1 = std::move(r.ilt.mask1);
      mask2 = std::move(r.ilt.mask2);
      response = std::move(r.ilt.response);
      report = r.ilt.report;
      seconds = r.total_seconds;
      candidates_generated = r.candidates_generated;
      candidates_tried = r.candidates_tried;
      iterations_run = r.ilt.iterations_run;
      warm_started = r.warm_started;
      phase_timing = r.timing;
    } else if (flow_name == "suald" || flow_name == "balanced") {
      core::TwoStageFlow flow(
          simulator, [&flow_name](const layout::Layout& layout) {
            if (flow_name == "suald")
              return mpl::SpacingUniformityDecomposer().decompose(layout);
            return mpl::BalancedDecomposer().decompose(layout);
          });
      core::BaselineFlowResult r = flow.run(l);
      mask1 = std::move(r.ilt.mask1);
      mask2 = std::move(r.ilt.mask2);
      response = std::move(r.ilt.response);
      report = r.ilt.report;
      seconds = r.total_seconds;
    } else if (flow_name == "unified") {
      core::UnifiedGreedyFlow flow(simulator, {});
      core::BaselineFlowResult r = flow.run(l);
      mask1 = std::move(r.ilt.mask1);
      mask2 = std::move(r.ilt.mask2);
      response = std::move(r.ilt.response);
      report = r.ilt.report;
      seconds = r.total_seconds;
    } else {
      return usage();
    }
  }  // closes cli.run so the report sees a finished root span

  std::printf("flow %-8s: %d EPE violations, %d print violations, "
              "L2 %.1f, score %.1f (%.2fs)\n",
              flow_name.c_str(), report.epe.violation_count,
              report.violations.total(), report.l2, report.score(), seconds);
  if (warm_path)
    std::printf("warm start: %s, %d ILT iterations run\n",
                warm_started ? "seeded" : "cold fallback", iterations_run);
  layout::write_pgm(mask1, "cli_mask1.pgm");
  layout::write_pgm(mask2, "cli_mask2.pgm");
  layout::write_pgm(response, "cli_print.pgm");
  std::printf("wrote cli_mask1.pgm cli_mask2.pgm cli_print.pgm\n");

  if (report_path) {
    runtime::publish_metrics();  // pool gauges into the metrics snapshot
    obs::RunReport run_report("ldmo_cli");
    run_report.meta("flow", flow_name);
    run_report.meta("layout", l.name);
    run_report.meta("layout_file", argv[2]);
    run_report.section("result", [&](obs::JsonWriter& w) {
      w.begin_object();
      w.kv("epe_violations", report.epe.violation_count);
      w.kv("print_violations", report.violations.total());
      w.kv("l2", report.l2);
      w.kv("score", report.score());
      w.kv("seconds", seconds);
      w.kv("candidates_generated", candidates_generated);
      w.kv("candidates_tried", candidates_tried);
      w.kv("ilt_iterations", iterations_run);
      w.kv("warm_started", warm_started);
      w.end_object();
    });
    // Parallelism accounting: the thread budget plus per-phase wall vs
    // process-CPU time (cpu/wall ~ threads on a busy parallel phase).
    run_report.section("runtime", [&](obs::JsonWriter& w) {
      w.begin_object();
      w.kv("threads", runtime::thread_count());
      w.key("phases");
      w.begin_object();
      std::vector<std::string> phases = phase_timing.phases();
      std::sort(phases.begin(), phases.end());
      for (const std::string& phase : phases) {
        w.key(phase);
        w.begin_object();
        w.kv("wall_seconds", phase_timing.get(phase));
        w.kv("cpu_seconds", phase_timing.get_cpu(phase));
        w.end_object();
      }
      w.end_object();
      w.end_object();
    });
    run_report.write(report_path);
    std::printf("wrote run report %s\n", report_path);
  }
  return 0;
}

// Structural validation of a run report: parses the JSON and checks the
// sections the observability layer promises. Used by the CTest smoke test.
int cmd_validate_report(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "validate-report: cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  obs::JsonValue doc;
  try {
    doc = obs::parse_json(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "validate-report: %s\n", e.what());
    return 1;
  }

  auto fail = [&](const char* what) {
    std::fprintf(stderr, "validate-report: %s in %s\n", what, argv[2]);
    return 1;
  };
  if (!doc.is_object()) return fail("top level is not an object");
  const obs::JsonValue* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object()) return fail("missing metrics object");
  const obs::JsonValue* counters = metrics->find("counters");
  if (!counters || !counters->is_object())
    return fail("missing metrics.counters object");
  const obs::JsonValue* spans = doc.find("spans");
  if (!spans || !spans->is_array()) return fail("missing spans array");
  for (const obs::JsonValue& root : spans->array) {
    if (!root.is_object() || !root.find("name") || !root.find("seconds"))
      return fail("span node missing name/seconds");
  }

  // When the report captured an LDMO flow run, require its phase tree and
  // the per-attempt ILT children with an iteration trace.
  const obs::JsonValue* ldmo_run = nullptr;
  for (const obs::JsonValue& root : spans->array) {
    const obs::JsonValue* children =
        root.is_object() ? root.find("children") : nullptr;
    if (!children) continue;
    for (const obs::JsonValue& child : children->array) {
      const obs::JsonValue* name = child.find("name");
      if (name && name->string == "ldmo.run") ldmo_run = &child;
    }
    const obs::JsonValue* name = root.find("name");
    if (name && name->string == "ldmo.run") ldmo_run = &root;
  }
  if (ldmo_run) {
    const obs::JsonValue* children = ldmo_run->find("children");
    if (!children || !children->is_array())
      return fail("ldmo.run span has no children");
    bool has_generate = false, has_predict = false, has_ilt = false;
    const obs::JsonValue* ilt_phase = nullptr;
    for (const obs::JsonValue& phase : children->array) {
      const obs::JsonValue* name = phase.find("name");
      if (!name) continue;
      if (name->string == "generate") has_generate = true;
      if (name->string == "predict") has_predict = true;
      if (name->string == "ilt") { has_ilt = true; ilt_phase = &phase; }
    }
    if (!has_generate || !has_predict || !has_ilt)
      return fail("ldmo.run span lacks generate/predict/ilt phases");
    const obs::JsonValue* attempts =
        ilt_phase ? ilt_phase->find("children") : nullptr;
    if (!attempts || attempts->array.empty())
      return fail("ilt phase has no per-attempt spans");
    const obs::JsonValue* optimize =
        attempts->array.front().find("children");
    const obs::JsonValue* trace =
        optimize && !optimize->array.empty()
            ? optimize->array.front().find("series")
            : nullptr;
    if (!trace || !trace->find("trace"))
      return fail("ILT attempt has no per-iteration trace");
  }

  std::printf("validate-report: %s ok (%zu top-level spans)\n", argv[2],
              spans->array.size());
  return 0;
}

// Replays the full LDMO flow over generated clips and appends each
// successful (target, decomposition rasters, optimized masks) triple to an
// append-only binary corpus — the supervision the warm-start MaskNet
// trains on. --sampling spends the flow runs on a SIFT/k-medoids-selected
// subset of an oversampled clip pool instead of the first N seeds.
int cmd_warmstart_harvest(int argc, char** argv) {
  const std::string out =
      flag_value(argc, argv, "--out", "warmstart_corpus.bin");
  warmstart::HarvestConfig hcfg;
  hcfg.clip_count = std::atoi(flag_value(argc, argv, "--clips", "32"));
  hcfg.seed0 = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed0", "900")));
  hcfg.use_sampling = flag_present(argc, argv, "--sampling");
  hcfg.oversample = std::atoi(flag_value(argc, argv, "--oversample", "4"));
  if (hcfg.clip_count < 1 || hcfg.oversample < 1) return usage();

  core::FlowEngineConfig engine_cfg;
  engine_cfg.litho = cli_litho();
  core::FlowEngine engine(engine_cfg);
  const warmstart::HarvestStats stats =
      warmstart::harvest_corpus(engine, hcfg, out);
  std::printf("warmstart-harvest: %d attempted, %d harvested, %d failed\n",
              stats.attempted, stats.harvested, stats.failed);
  std::printf("corpus %s now holds %zu records (grid %d)\n", out.c_str(),
              warmstart::corpus_record_count(out),
              engine_cfg.litho.grid_size);
  return stats.harvested > 0 ? 0 : 1;
}

// Trains the MaskNet warm-start model on a harvested corpus and writes the
// weights (tmp-then-rename). Prints the per-epoch mask MSE plus the cold
// +/- initial_p baseline the learned init must beat.
int cmd_warmstart_train(int argc, char** argv) {
  const std::string corpus_path =
      flag_value(argc, argv, "--corpus", "warmstart_corpus.bin");
  const std::string out =
      flag_value(argc, argv, "--out", "warmstart.weights");
  warmstart::WarmTrainConfig tcfg;
  tcfg.epochs = std::atoi(flag_value(argc, argv, "--epochs", "12"));
  tcfg.batch_size = std::atoi(flag_value(argc, argv, "--batch", "4"));
  tcfg.adam.learning_rate =
      std::atof(flag_value(argc, argv, "--lr",
                           std::to_string(tcfg.adam.learning_rate).c_str()));
  const int width = std::atoi(flag_value(argc, argv, "--width", "8"));
  if (tcfg.epochs < 1 || tcfg.batch_size < 1 || width < 1) return usage();

  const warmstart::Corpus corpus = warmstart::read_corpus(corpus_path);
  std::printf("warmstart-train: %zu records (grid %d) from %s\n",
              corpus.records.size(), corpus.grid_size, corpus_path.c_str());
  warmstart::MaskNetConfig net_cfg;
  net_cfg.grid_size = corpus.grid_size;
  net_cfg.base_width = width;
  warmstart::MaskWarmStart warm(net_cfg);
  std::printf("MaskNet: base width %d, %zu parameters\n", width,
              warm.net().parameter_count());
  train_masknet(warm.net(), corpus, tcfg,
                [](const warmstart::WarmEpochStats& epoch) {
                  std::printf("  epoch %2d  mask MSE %.6f\n", epoch.epoch,
                              epoch.mean_loss);
                });
  warm.refresh_version();
  warm.save(out);

  const double cold = warmstart::cold_init_loss(corpus, tcfg.theta_m);
  const double learned =
      warmstart::evaluate_masknet(warm.net(), corpus, tcfg.theta_m);
  std::printf("train-set mask MSE: learned %.6f vs cold init %.6f (%s)\n",
              learned, cold, learned < cold ? "better" : "WORSE");
  std::printf("wrote %s (weights v%llu)\n", out.c_str(),
              static_cast<unsigned long long>(warm.version()));
  return 0;
}

// Closed-loop load generator over the serving layer: C client threads
// submit N requests drawn round-robin from K unique layouts, so every
// layout past the first K rounds through the content-addressed result
// cache. Reports per-status counts, throughput and ok/cached latency
// percentiles; --report writes the server's run report (serve.cache.*,
// serve.batch.*, queue depth, percentiles) as JSON.
//
// serve-bench --net-workers W: the same closed-loop load, but through the
// wire protocol — W in-process ServeDaemons behind a consistent-hash
// Router, every request a TCP round trip. With --inject, the armed sites
// are the transport ones (net.frame.read / net.frame.write / net.connect):
// connections drop mid-frame at client, router and worker alike, and the
// drill verdict checks that client retry + router failover still deliver a
// terminal response for every request (requests are content-addressed and
// idempotent, so a resend can never produce a different answer).
int run_net_bench(int requests, int unique, int clients, int dispatchers,
                  double deadline_ms, bool inject, double inject_prob,
                  std::uint64_t inject_seed, int net_workers) {
  serve::ServeConfig scfg;
  scfg.engine.litho = cli_litho();
  scfg.dispatchers = dispatchers;
  scfg.queue_capacity =
      std::max<std::size_t>(64, static_cast<std::size_t>(requests));
  scfg.overflow = serve::OverflowPolicy::kBlock;

  std::vector<std::unique_ptr<net::ServeDaemon>> workers;
  std::vector<int> worker_ports;
  for (int w = 0; w < net_workers; ++w) {
    net::DaemonConfig dcfg;
    dcfg.serve = scfg;
    workers.push_back(std::make_unique<net::ServeDaemon>(dcfg));
    worker_ports.push_back(workers.back()->port());
  }
  net::RouterConfig rcfg;
  rcfg.worker_ports = worker_ports;
  net::Router router(rcfg);

  if (inject) {
    fail::arm("net.frame.read",
              fail::probability(inject_prob, inject_seed));
    fail::arm("net.frame.write",
              fail::probability(inject_prob, inject_seed + 1));
    fail::arm("net.connect",
              fail::probability(inject_prob, inject_seed + 2));
  }

  layout::LayoutGenerator generator;
  std::vector<layout::Layout> pool;
  pool.reserve(static_cast<std::size_t>(unique));
  for (int k = 0; k < unique; ++k)
    pool.push_back(generator.generate(9000 + static_cast<std::uint64_t>(k)));

  std::atomic<int> next{0};
  std::atomic<int> lost{0};
  std::mutex responses_mu;
  std::vector<serve::ServeResponse> responses;
  responses.reserve(static_cast<std::size_t>(requests));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    client_threads.emplace_back([&] {
      // Generous transport retry budget: under injection each attempt can
      // lose its connection at several hops, and the drill's contract is
      // zero lost requests.
      net::Client client(net::ClientConfig{
          .port = router.port(),
          .net_retries = inject ? 5 : 2,
      });
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        serve::ServeRequest request;
        request.layout = pool[static_cast<std::size_t>(i % unique)];
        request.deadline_seconds = deadline_ms / 1000.0;
        try {
          serve::ServeResponse response = client.submit(request);
          std::lock_guard<std::mutex> lock(responses_mu);
          responses.push_back(std::move(response));
        } catch (const std::exception& e) {
          lost.fetch_add(1);
          std::fprintf(stderr, "net-bench: lost request %d: %s\n", i,
                       e.what());
        }
      }
    });
  for (std::thread& t : client_threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (inject) fail::disarm_all();

  std::printf("serve-bench[net]: %d requests (%d unique), %d clients -> "
              "router -> %d workers x %d dispatchers%s\n",
              requests, unique, clients, net_workers, dispatchers,
              inject ? ", transport fault injection on" : "");
  long long ok = 0, cached = 0, failed = 0;
  for (const serve::ServeResponse& r : responses) {
    if (r.status == serve::ServeStatus::kOk) ++ok;
    if (r.status == serve::ServeStatus::kCached) ++cached;
    if (r.status == serve::ServeStatus::kFailed) ++failed;
  }
  std::printf("  ok %lld  cached %lld  failed %lld  throughput %.2f req/s\n",
              ok, cached, failed,
              static_cast<double>(requests) / elapsed);
  for (int port : worker_ports)
    std::printf("  shard %-5d forwarded %lld  errors %lld\n", port,
                obs::counter("net.router.shard." + std::to_string(port) +
                             ".forwarded")
                    .value(),
                obs::counter("net.router.shard." + std::to_string(port) +
                             ".errors")
                    .value());
  std::printf("  transport: %lld frame errors, %lld client retries, "
              "%lld failovers\n",
              obs::counter("net.frame.errors").value(),
              obs::counter("net.client.retries").value(),
              obs::counter("net.router.failovers").value());
  if (inject)
    for (const char* site :
         {"net.frame.read", "net.frame.write", "net.connect"})
      std::printf("    fired.%-15s %lld\n", site, fail::fire_count(site));
  const bool all_answered =
      lost.load() == 0 &&
      responses.size() == static_cast<std::size_t>(requests);
  std::printf("  drill verdict: %s (%zu/%d responses, %d lost)\n",
              all_answered ? "zero lost requests" : "LOST REQUESTS",
              responses.size(), requests, lost.load());

  router.stop();
  for (auto& worker : workers) worker->stop();
  return all_answered ? 0 : 1;
}

// --inject turns the bench into a fault drill: probability failpoints are
// armed across the stack (generation, scoring, litho exposure, ILT, the
// result cache) and retry is enabled, so the run demonstrates the fault
// ladder end to end — every submitted request still completes, with a mix
// of ok / failed / degraded outcomes and zero aborts or broken futures.
int cmd_serve_bench(int argc, char** argv) {
  const int requests =
      std::atoi(flag_value(argc, argv, "--requests", "24"));
  const int unique = std::atoi(flag_value(argc, argv, "--unique", "6"));
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "4"));
  const int dispatchers =
      std::atoi(flag_value(argc, argv, "--dispatchers", "2"));
  const double deadline_ms =
      std::atof(flag_value(argc, argv, "--deadline-ms", "0"));
  const char* report_path = flag_value(argc, argv, "--report", nullptr);
  const bool inject = flag_present(argc, argv, "--inject");
  const double inject_prob =
      std::atof(flag_value(argc, argv, "--inject-prob", "0.05"));
  const std::uint64_t inject_seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--inject-seed", "1234")));
  const char* admin_port = flag_value(argc, argv, "--admin-port", nullptr);
  const int admin_linger_ms =
      std::atoi(flag_value(argc, argv, "--admin-linger-ms", "0"));
  if (requests < 1 || unique < 1 || clients < 1) return usage();
  if (inject && (inject_prob <= 0.0 || inject_prob >= 1.0)) return usage();

  const int net_workers =
      std::atoi(flag_value(argc, argv, "--net-workers", "0"));
  if (net_workers > 0) {
    obs::registry().reset();
    return run_net_bench(requests, unique, clients, dispatchers, deadline_ms,
                         inject, inject_prob, inject_seed, net_workers);
  }

  obs::registry().reset();
  if (report_path) {
    obs::set_tracing_enabled(true);
    obs::tracer().clear();
  }

  serve::ServeConfig cfg;
  cfg.engine.litho = cli_litho();
  cfg.dispatchers = dispatchers;
  cfg.queue_capacity =
      std::max<std::size_t>(64, static_cast<std::size_t>(requests));
  // Closed-loop clients must not lose requests to backpressure.
  cfg.overflow = serve::OverflowPolicy::kBlock;
  cfg.batcher.enabled = !flag_present(argc, argv, "--no-batch");
  const bool cache_on = !flag_present(argc, argv, "--no-cache");
  cfg.result_cache.enabled = cache_on;
  cfg.score_cache.enabled = cache_on;
  if (inject) {
    // Per-evaluation probabilities scaled by how often each site runs per
    // request: litho.expose fires hundreds of times per flow run, so it
    // gets a much smaller chance than the once-per-run sites.
    fail::arm("mpl.generate", fail::probability(inject_prob, inject_seed));
    fail::arm("predictor.score",
              fail::probability(inject_prob, inject_seed + 1));
    fail::arm("opc.ilt.optimize",
              fail::probability(inject_prob, inject_seed + 2));
    fail::arm("litho.expose",
              fail::probability(inject_prob / 100.0, inject_seed + 3));
    fail::arm("serve.cache", fail::probability(inject_prob, inject_seed + 4));
    // One bounded retry absorbs most transient faults.
    cfg.retry.max_attempts = 2;
    cfg.retry.initial_backoff_ms = 1.0;
  }
  if (admin_port) {
    cfg.admin.enabled = true;
    cfg.admin.port = std::atoi(admin_port);
    // Failure postmortems land next to the bench's other artifacts.
    cfg.flight.dump_path = "ldmo_flightrecorder.json";
  }
  serve::Server server(cfg);
  if (admin_port)
    std::printf("admin: http://127.0.0.1:%d/metrics (also /healthz /readyz "
                "/varz /trace /flightrecorder)\n",
                server.admin_port());

  layout::LayoutGenerator generator;
  std::vector<layout::Layout> pool;
  pool.reserve(static_cast<std::size_t>(unique));
  for (int k = 0; k < unique; ++k)
    pool.push_back(generator.generate(9000 + static_cast<std::uint64_t>(k)));

  std::atomic<int> next{0};
  std::mutex responses_mu;
  std::vector<serve::ServeResponse> responses;
  responses.reserve(static_cast<std::size_t>(requests));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    workers.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        serve::ServeRequest request;
        request.layout = pool[static_cast<std::size_t>(i % unique)];
        request.deadline_seconds = deadline_ms / 1000.0;
        serve::RequestTicket ticket = server.submit(std::move(request));
        serve::ServeResponse response = ticket.response.get();
        std::lock_guard<std::mutex> lock(responses_mu);
        responses.push_back(std::move(response));
      }
    });
  for (std::thread& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> latencies;
  for (const serve::ServeResponse& r : responses)
    if (r.ok()) latencies.push_back(r.total_seconds);
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    std::size_t index = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(latencies.size()))));
    return latencies[std::min(index - 1, latencies.size() - 1)];
  };

  std::printf("serve-bench: %d requests (%d unique), %d clients, "
              "%d dispatchers, cache %s, batching %s%s\n",
              requests, unique, clients, dispatchers,
              cache_on ? "on" : "off",
              cfg.batcher.enabled ? "on" : "off",
              inject ? ", fault injection on" : "");
  long long terminal = 0;
  for (int s = 0; s < serve::kServeStatusCount; ++s) {
    const serve::ServeStatus status = static_cast<serve::ServeStatus>(s);
    terminal += server.status_count(status);
    std::printf("  %-10s %lld\n", serve::status_name(status),
                server.status_count(status));
  }
  std::printf("  throughput %.2f req/s  p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
              static_cast<double>(requests) / elapsed, pct(0.50), pct(0.95),
              pct(0.99));
  if (inject) {
    std::printf("  fault drill: %lld retries, %lld degraded\n",
                server.retry_count(), server.degraded_count());
    for (int s = 0; s < kFlowStageCount; ++s) {
      const FlowStage stage = static_cast<FlowStage>(s);
      if (server.error_count(stage) > 0)
        std::printf("    errors.%-9s %lld\n", stage_name(stage),
                    server.error_count(stage));
    }
    for (const std::string& site : fail::armed_sites())
      std::printf("    fired.%-12s %lld\n", site.c_str(),
                  fail::fire_count(site));
    std::printf("  drill verdict: %s (%zu/%d responses, %lld terminal)\n",
                responses.size() == static_cast<std::size_t>(requests)
                    ? "all requests completed"
                    : "LOST REQUESTS",
                responses.size(), requests, terminal);
    fail::disarm_all();
  }

  if (report_path) {
    runtime::publish_metrics();
    obs::RunReport report = server.report();
    report.meta("requests", std::to_string(requests));
    report.meta("unique_layouts", std::to_string(unique));
    report.meta("clients", std::to_string(clients));
    report.write(report_path);
    std::printf("wrote run report %s\n", report_path);
  }
  if (admin_port && admin_linger_ms > 0) {
    std::printf("admin: lingering %d ms for manual scrapes "
                "(e.g. curl -s http://127.0.0.1:%d/trace > trace.json, "
                "then load it in ui.perfetto.dev)\n",
                admin_linger_ms, server.admin_port());
    std::this_thread::sleep_for(std::chrono::milliseconds(admin_linger_ms));
  }
  server.shutdown();
  return 0;
}

// --- cluster subcommands (src/net) ---

volatile std::sig_atomic_t g_signal_stop = 0;
void handle_stop_signal(int) { g_signal_stop = 1; }

/// Blocks until SIGINT/SIGTERM (the serve/route process lifetime).
void wait_for_stop_signal() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_signal_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// Worker daemon: drains wire-protocol frames into an in-process
// serve::Server until SIGTERM, then drains and (if configured) writes the
// result-cache snapshot. The cluster tests parse the "listening on port"
// line from stdout, so it is printed unbuffered before the wait.
int cmd_serve(int argc, char** argv) {
  net::DaemonConfig cfg;
  cfg.listen_port = std::atoi(flag_value(argc, argv, "--listen", "0"));
  cfg.serve.engine.litho = cli_litho();
  cfg.serve.engine.litho.grid_size =
      std::atoi(flag_value(argc, argv, "--grid", "64"));
  cfg.serve.engine.litho.pixel_nm =
      std::atof(flag_value(argc, argv, "--pixel", "16"));
  cfg.serve.dispatchers =
      std::atoi(flag_value(argc, argv, "--dispatchers", "2"));
  cfg.serve.overflow = serve::OverflowPolicy::kBlock;
  cfg.weights_path = flag_value(argc, argv, "--weights", "");
  cfg.snapshot_path = flag_value(argc, argv, "--snapshot", "");
  const char* warm_path = flag_value(argc, argv, "--warm-start", nullptr);
  if (warm_path) {
    // One shared model serves every dispatcher engine; its weight version
    // is folded into the config fingerprint so cached results retire if
    // the daemon restarts with a retrained model.
    warmstart::MaskNetConfig net_cfg;
    net_cfg.grid_size = cfg.serve.engine.litho.grid_size;
    net_cfg.base_width =
        std::atoi(flag_value(argc, argv, "--warm-width", "8"));
    auto warm = std::make_shared<warmstart::MaskWarmStart>(net_cfg);
    warm->load(warm_path);
    cfg.serve.warm_start = warm;
    cfg.serve.engine.flow.warm_start.enabled = true;
    cfg.serve.engine.flow.warm_start.max_iterations =
        std::atoi(flag_value(argc, argv, "--warm-iters", "25"));
  }
  const char* admin_port = flag_value(argc, argv, "--admin-port", nullptr);
  if (admin_port) {
    cfg.serve.admin.enabled = true;
    cfg.serve.admin.port = std::atoi(admin_port);
  }

  // Online-learning flywheel: capture completed runs into a training log
  // and fine-tune/promote the predictor in the background (DESIGN.md §16).
  // The sink hangs off the serve config (so the daemon's blue/green swaps
  // carry it into every replacement server); the tuner promotes through
  // the daemon's versioned swap path, exactly like a wire swap-weights.
  const char* flywheel_log = flag_value(argc, argv, "--flywheel", nullptr);
  std::shared_ptr<flywheel::TrainingLogSink> sink;
  if (flywheel_log) {
    flywheel::SinkConfig sink_cfg;
    sink_cfg.path = flywheel_log;
    sink_cfg.image_size = 64;  // default CnnPredictor ResNet input size
    sink_cfg.sample_every =
        std::atoi(flag_value(argc, argv, "--flywheel-sample", "1"));
    sink = std::make_shared<flywheel::TrainingLogSink>(sink_cfg);
    cfg.serve.capture = sink;
  }

  net::ServeDaemon daemon(cfg);

  std::unique_ptr<flywheel::FineTuner> tuner;
  if (flywheel_log) {
    flywheel::TunerConfig tuner_cfg;
    tuner_cfg.log_path = flywheel_log;
    tuner_cfg.min_new_records = static_cast<std::size_t>(
        std::atoi(flag_value(argc, argv, "--flywheel-min-new", "12")));
    tuner_cfg.poll_interval_ms =
        std::atoi(flag_value(argc, argv, "--flywheel-poll-ms", "500"));
    tuner_cfg.trainer.epochs =
        std::atoi(flag_value(argc, argv, "--flywheel-epochs", "4"));
    tuner = std::make_unique<flywheel::FineTuner>(
        tuner_cfg,
        [&daemon](std::uint64_t version,
                  const std::vector<std::uint8_t>& blob) {
          daemon.swap_weights(version, blob);
        });
    if (!cfg.weights_path.empty()) {
      std::ifstream in(cfg.weights_path, std::ios::binary);
      std::vector<std::uint8_t> incumbent{
          std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
      if (!incumbent.empty()) tuner->set_incumbent(incumbent);
    }
    tuner->start();
  }

  std::printf("serve: listening on port %d\n", daemon.port());
  if (admin_port)
    std::printf("serve: admin on http://127.0.0.1:%d\n",
                daemon.server()->admin_port());
  if (flywheel_log)
    std::printf("serve: flywheel capturing to %s\n", flywheel_log);
  std::fflush(stdout);
  wait_for_stop_signal();
  if (tuner) tuner->stop();
  daemon.stop();
  if (sink) sink->drain();
  if (tuner)
    std::printf("serve: flywheel captured %lld pairs, %lld rounds, "
                "%lld promotions\n",
                sink->captured(), tuner->rounds(), tuner->promotions());
  std::printf("serve: stopped\n");
  return 0;
}

std::vector<int> parse_port_list(const char* spec) {
  std::vector<int> ports;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) ports.push_back(std::atoi(item.c_str()));
  return ports;
}

// Router process: consistent-hash front door over worker ports.
int cmd_route(int argc, char** argv) {
  const char* workers = flag_value(argc, argv, "--workers", nullptr);
  if (!workers) return usage();
  net::RouterConfig cfg;
  cfg.listen_port = std::atoi(flag_value(argc, argv, "--listen", "0"));
  cfg.worker_ports = parse_port_list(workers);
  if (cfg.worker_ports.empty()) return usage();
  const char* admin_port = flag_value(argc, argv, "--admin-port", nullptr);
  if (admin_port) {
    cfg.admin.enabled = true;
    cfg.admin.port = std::atoi(admin_port);
  }

  net::Router router(cfg);
  std::printf("route: listening on port %d\n", router.port());
  if (admin_port)
    std::printf("route: admin on http://127.0.0.1:%d\n",
                router.admin_port());
  std::fflush(stdout);
  wait_for_stop_signal();
  router.stop();
  std::printf("route: stopped\n");
  return 0;
}

// One layout over the wire: submit to a worker or router and print the
// terminal status (the cluster quick-start's smoke test).
int cmd_net_submit(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* port = flag_value(argc, argv, "--port", nullptr);
  if (!port) return usage();
  serve::ServeRequest request;
  request.layout = layout::read_layout_text(argv[2]);
  request.deadline_seconds =
      std::atof(flag_value(argc, argv, "--deadline-ms", "0")) / 1000.0;

  net::Client client(net::ClientConfig{.port = std::atoi(port)});
  const serve::ServeResponse response = client.submit(request);
  std::printf("net-submit: %s (%s) in %.3fs", serve::status_name(response.status),
              response.ok() ? "ok" : response.error.message.c_str(),
              response.total_seconds);
  if (response.ok())
    std::printf(", %d EPE violations, L2 %.1f",
                response.result.ilt.report.epe.violation_count,
                response.result.ilt.report.l2);
  std::printf("\n");
  return response.ok() ? 0 : 1;
}

int cmd_net_stats(int argc, char** argv) {
  const char* port = flag_value(argc, argv, "--port", nullptr);
  if (!port) return usage();
  net::Client client(net::ClientConfig{.port = std::atoi(port)});
  const net::WorkerStats stats = client.stats();
  std::printf("worker: predictor %s, weights v%llu, config %016llx\n",
              stats.predictor.c_str(),
              static_cast<unsigned long long>(stats.weights_version),
              static_cast<unsigned long long>(stats.config_fingerprint));
  for (int s = 0; s < serve::kServeStatusCount; ++s)
    std::printf("  %-10s %lld\n",
                serve::status_name(static_cast<serve::ServeStatus>(s)),
                stats.status_counts[s]);
  std::printf("  cache: %llu entries, %lld hits, %lld misses; queue %llu\n",
              static_cast<unsigned long long>(stats.cache_entries),
              stats.cache_hits, stats.cache_misses,
              static_cast<unsigned long long>(stats.queue_depth));
  return 0;
}

// Versioned weight hot-swap: push a weights file (or, with no --weights, a
// rolling restart that keeps the current weights and carries the warm
// cache across) to a worker — or to a router, which broadcasts it.
int cmd_swap_weights(int argc, char** argv) {
  const char* port = flag_value(argc, argv, "--port", nullptr);
  if (!port) return usage();
  const char* weights = flag_value(argc, argv, "--weights", nullptr);
  const std::uint64_t version = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--version", "0")));

  std::vector<std::uint8_t> blob;
  if (weights) {
    std::ifstream in(weights, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "swap-weights: cannot read %s\n", weights);
      return 1;
    }
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Optional warm-start MaskNet push in the same swap: the worker loads it
  // into a fresh MaskWarmStart whose version retires warm-dependent keys.
  std::vector<std::uint8_t> warm_blob;
  if (const char* warm = flag_value(argc, argv, "--warm-start", nullptr)) {
    std::ifstream in(warm, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "swap-weights: cannot read %s\n", warm);
      return 1;
    }
    warm_blob.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }
  net::Client client(net::ClientConfig{.port = std::atoi(port)});
  const std::uint64_t active = client.swap_weights(version, blob, warm_blob);
  std::printf("swap-weights: active version is now %llu\n",
              static_cast<unsigned long long>(active));
  return 0;
}

// Inspect a flywheel training log: record count, framing health, score
// spread — the operator's first stop when the flywheel looks stalled.
int cmd_flywheel_stats(int argc, char** argv) {
  const char* log_path = flag_value(argc, argv, "--log", nullptr);
  if (!log_path) return usage();
  const flywheel::TrainingLog log = flywheel::read_training_log(log_path);
  double lo = 0.0, hi = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < log.pairs.size(); ++i) {
    const double s = log.pairs[i].score;
    lo = i == 0 ? s : std::min(lo, s);
    hi = i == 0 ? s : std::max(hi, s);
    sum += s;
  }
  std::printf("flywheel log %s: %zu pairs at %dx%d%s\n", log_path,
              log.pairs.size(), log.image_size, log.image_size,
              log.torn_tail ? " (torn tail dropped)" : "");
  if (!log.pairs.empty())
    std::printf("scores: min %.3f, mean %.3f, max %.3f\n", lo,
                sum / static_cast<double>(log.pairs.size()), hi);
  return 0;
}

// One offline flywheel round: fine-tune on a captured log and write the
// candidate weights iff they beat the incumbent on the held-out slice.
// Exit 0 = promoted, 1 = gate held or not enough data.
int cmd_flywheel_train(int argc, char** argv) {
  const char* log_path = flag_value(argc, argv, "--log", nullptr);
  const char* out = flag_value(argc, argv, "--out", nullptr);
  if (!log_path || !out) return usage();

  flywheel::TunerConfig cfg;
  cfg.log_path = log_path;
  cfg.min_new_records = static_cast<std::size_t>(
      std::atoi(flag_value(argc, argv, "--min-new", "8")));
  cfg.trainer.epochs = std::atoi(flag_value(argc, argv, "--epochs", "4"));
  cfg.trainer.batch_size = std::atoi(flag_value(argc, argv, "--batch", "8"));
  cfg.trainer.adam.learning_rate =
      std::atof(flag_value(argc, argv, "--lr", "0.001"));

  bool promoted = false;
  flywheel::FineTuner tuner(
      cfg, [&](std::uint64_t, const std::vector<std::uint8_t>& blob) {
        std::ofstream f(out, std::ios::binary | std::ios::trunc);
        f.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
        if (!f) throw std::runtime_error(std::string("cannot write ") + out);
        promoted = true;
      });
  if (const char* weights = flag_value(argc, argv, "--weights", nullptr)) {
    std::ifstream in(weights, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "flywheel-train: cannot read %s\n", weights);
      return 1;
    }
    tuner.set_incumbent(std::vector<std::uint8_t>{
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>()});
  }
  const flywheel::TuneRound round = tuner.run_once();
  std::printf("flywheel-train: %s (records %zu, train %zu, holdout %zu, "
              "incumbent corr %.3f, candidate corr %.3f)\n",
              round.detail.c_str(), round.records, round.train_count,
              round.holdout_count, round.incumbent_corr,
              round.candidate_corr);
  if (promoted) std::printf("wrote %s\n", out);
  return round.promoted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    runtime::apply_threads_flag(argc, argv);
    kernels::apply_backend_flag(argc, argv);
    apply_log_level_flag(argc, argv);
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "inspect") == 0) return cmd_inspect(argc, argv);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
    if (std::strcmp(argv[1], "validate-report") == 0)
      return cmd_validate_report(argc, argv);
    if (std::strcmp(argv[1], "warmstart-harvest") == 0)
      return cmd_warmstart_harvest(argc, argv);
    if (std::strcmp(argv[1], "warmstart-train") == 0)
      return cmd_warmstart_train(argc, argv);
    if (std::strcmp(argv[1], "serve-bench") == 0)
      return cmd_serve_bench(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
    if (std::strcmp(argv[1], "route") == 0) return cmd_route(argc, argv);
    if (std::strcmp(argv[1], "net-submit") == 0)
      return cmd_net_submit(argc, argv);
    if (std::strcmp(argv[1], "net-stats") == 0)
      return cmd_net_stats(argc, argv);
    if (std::strcmp(argv[1], "swap-weights") == 0)
      return cmd_swap_weights(argc, argv);
    if (std::strcmp(argv[1], "flywheel-stats") == 0)
      return cmd_flywheel_stats(argc, argv);
    if (std::strcmp(argv[1], "flywheel-train") == 0)
      return cmd_flywheel_train(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
