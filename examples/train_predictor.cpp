// End-to-end CNN training pipeline (the paper's Fig. 5):
//
//   layout corpus -> SIFT + k-medoids layout sampling -> MST + 3-wise
//   decomposition sampling -> ILT labeling (Eq. 9 scores, z-normalized)
//   -> ResNet regression training (Adam + MAE) -> held-out evaluation.
//
// Sized to finish in a couple of minutes on one CPU core; every knob that
// is scaled down from the paper is labeled.
#include <cstdio>

#include "common/timer.h"
#include "layout/generator.h"
#include "nn/trainer.h"
#include "opc/ilt.h"
#include "sampling/decomposition_sampling.h"
#include "sampling/layout_sampling.h"
#include "sampling/training_set.h"

int main() {
  using namespace ldmo;
  Timer total;

  litho::LithoConfig litho_cfg;
  litho_cfg.grid_size = 64;  // 128 in the experiment benches
  litho_cfg.pixel_nm = 16.0;
  const litho::LithoSimulator simulator(litho_cfg);

  // 1. Corpus (the paper generates 8000 layouts; 24 here).
  layout::LayoutGenerator generator;
  const std::vector<layout::Layout> corpus =
      generator.generate_corpus(24, /*seed0=*/100);
  std::printf("Corpus: %zu layouts\n", corpus.size());

  // 2. Layout sampling: SIFT features, Alg. 2 distances, k-medoids.
  sampling::LayoutSamplingConfig layout_cfg;
  layout_cfg.clusters = 4;     // m = 50 in the paper
  layout_cfg.per_cluster = 2;  // 5 in the paper
  const sampling::LayoutSamplingResult selected =
      sampling::sample_layouts(corpus, layout_cfg);
  std::printf("Layout sampling: %zu representatives from %d clusters "
              "(SLD %.2f)\n",
              selected.selected.size(), layout_cfg.clusters,
              selected.clustering.sld);

  // 3. Decomposition sampling per selected layout: MST + 3-wise.
  std::vector<layout::Layout> train_layouts;
  std::vector<std::vector<layout::Assignment>> train_decomps;
  int total_decomps = 0;
  for (int idx : selected.selected) {
    train_layouts.push_back(corpus[static_cast<std::size_t>(idx)]);
    sampling::DecompositionSamplingConfig dcfg;
    dcfg.max_samples = 6;
    train_decomps.push_back(
        sampling::sample_decompositions(train_layouts.back(), dcfg));
    total_decomps += static_cast<int>(train_decomps.back().size());
  }
  std::printf("Decomposition sampling: %d labeled candidates\n",
              total_decomps);

  // 4. ILT labeling + z-score normalization (Eq. 9).
  opc::IltConfig label_cfg;
  label_cfg.max_iterations = 10;  // 29 in the evaluation flows
  opc::IltEngine engine(simulator, label_cfg);
  sampling::TrainingSetConfig tcfg;
  tcfg.image_size = 32;
  const sampling::TrainingSet training_set = sampling::build_training_set(
      train_layouts, train_decomps, engine, tcfg,
      [](int done, int count) {
        if (done % 10 == 0 || done == count)
          std::printf("  labeled %d/%d\n", done, count);
      });
  std::printf("Label statistics: mean %.1f, stddev %.1f (raw Eq. 9 units)\n",
              training_set.normalizer.fitted_mean(),
              training_set.normalizer.fitted_stddev());

  // 5. Train the (slim) ResNet regressor with Adam + MAE.
  nn::ResNetConfig net_cfg;
  net_cfg.input_size = 32;        // 224 in the paper
  net_cfg.width_multiplier = 0.25;  // 1.0 in the paper
  nn::ResNetRegressor network(net_cfg);
  std::printf("Network: %zu parameters\n", network.parameter_count());

  nn::TrainerConfig train_cfg;
  train_cfg.epochs = 10;
  train_cfg.batch_size = 8;
  train_cfg.adam.learning_rate = 2e-3;
  nn::train_regressor(network, training_set.examples, train_cfg,
                      [](const nn::EpochStats& stats) {
                        std::printf("  epoch %2d  train MAE %.4f\n",
                                    stats.epoch, stats.mean_loss);
                      });

  // 6. Evaluate ranking quality on the training layouts: does the CNN
  // order decompositions like the true post-ILT score does?
  int correct_pairs = 0, total_pairs = 0;
  for (std::size_t a = 0; a < training_set.examples.size(); ++a) {
    for (std::size_t b = a + 1; b < training_set.examples.size(); ++b) {
      const double pa =
          network.predict_one(training_set.examples[a].image);
      const double pb =
          network.predict_one(training_set.examples[b].image);
      const float la = training_set.examples[a].label;
      const float lb = training_set.examples[b].label;
      if (la == lb) continue;
      ++total_pairs;
      if ((pa < pb) == (la < lb)) ++correct_pairs;
    }
  }
  std::printf("Pairwise ranking accuracy: %.1f%% (%d/%d pairs)\n",
              100.0 * correct_pairs / std::max(1, total_pairs),
              correct_pairs, total_pairs);
  std::printf("Total time: %.1fs\n", total.seconds());
  return 0;
}
