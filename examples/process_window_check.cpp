// Process-window robustness demo: optimize masks for a layout at nominal
// conditions, then measure how the result survives defocus and dose
// variation (the evaluation the paper's PW-aware baselines [6], [9] care
// about).
#include <cstdio>

#include "layout/generator.h"
#include "litho/process_window.h"
#include "mpl/baselines.h"
#include "opc/ilt.h"

int main() {
  using namespace ldmo;

  // Experiment-grade grid (8nm pixels): EPE metrology at the 10nm
  // threshold needs it, and kernel construction is a one-time ~2s cost.
  const litho::LithoConfig litho_cfg;
  const litho::LithoSimulator simulator(litho_cfg);

  layout::LayoutGenerator generator;
  const layout::Layout l = generator.generate(/*seed=*/55);
  std::printf("Layout %s: %d patterns\n", l.name.c_str(),
              l.pattern_count());

  // Nominal-condition ILT on a conflict-respecting decomposition.
  const layout::Assignment assignment =
      mpl::SpacingUniformityDecomposer().decompose(l);
  opc::IltEngine engine(simulator, opc::IltConfig{});
  const opc::IltResult optimized = engine.optimize(l, assignment);
  std::printf("Nominal result: %d EPE violations, %d print violations\n\n",
              optimized.report.epe.violation_count,
              optimized.report.violations.total());

  // Sweep increasingly harsh process windows.
  const litho::ProcessWindowAnalyzer analyzer(litho_cfg);
  std::printf("%-22s | %9s | %10s | %8s\n", "window",
              "total EPE", "worst corner", "PV band");
  for (const auto& [defocus, dose] :
       {std::pair{20.0, 0.03}, {40.0, 0.05}, {80.0, 0.08}}) {
    const litho::ProcessWindowReport report = analyzer.analyze(
        optimized.mask1, optimized.mask2, l,
        litho::standard_corners(defocus, dose));
    std::printf("defocus %3.0fnm dose %3.0f%% | %9d | %12d | %7dpx\n",
                defocus, dose * 100.0, report.total_epe_violations,
                report.worst_corner_epe, report.pv_band_pixels);
  }
  return 0;
}
