// Inspect the decomposition machinery on one layout:
//
//   - pattern classification (SP / VP / NP, Eq. 6),
//   - SP conflict graph + MST (Fig. 3),
//   - n-wise covering arrays and the resulting candidate list (Fig. 4),
//   - raw-print quality of each candidate (before any OPC).
//
// Useful for understanding what the candidate generator actually produces.
#include <cstdio>

#include "core/predictor.h"
#include "layout/generator.h"
#include "layout/io.h"
#include "layout/raster.h"
#include "mpl/decomposition_generator.h"

int main(int argc, char** argv) {
  using namespace ldmo;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7;

  layout::LayoutGenerator generator;
  const layout::Layout layout = generator.generate(seed);
  std::printf("Layout %s (%d patterns)\n", layout.name.c_str(),
              layout.pattern_count());

  // Classification per Eq. 6.
  const mpl::PatternClassification classes =
      mpl::classify_patterns(layout);
  auto class_name = [](mpl::PatternClass c) {
    switch (c) {
      case mpl::PatternClass::Separated: return "SP";
      case mpl::PatternClass::Violated: return "VP";
      case mpl::PatternClass::Normal: return "NP";
    }
    return "?";
  };
  for (const layout::Pattern& p : layout.patterns) {
    const double d = layout.nearest_distance(p.id);
    std::printf("  pattern %2d at (%4lld, %4lld): nearest %.1fnm -> %s\n",
                p.id, static_cast<long long>(p.shape.lo.x),
                static_cast<long long>(p.shape.lo.y), d,
                class_name(classes.classes[static_cast<std::size_t>(p.id)]));
  }
  std::printf("SP: %zu, VP: %zu, NP: %zu\n", classes.sp.size(),
              classes.vp.size(), classes.np.size());

  // Candidate generation (Algorithm 1).
  const mpl::GenerationResult generated =
      mpl::generate_decompositions(layout);
  std::printf("\nSP MST: %zu edges across %d component(s), total weight "
              "%.1fnm\n",
              generated.sp_mst.edges.size(), generated.sp_component_count,
              generated.sp_mst.total_weight);
  for (const graph::Edge& e : generated.sp_mst.edges)
    std::printf("  separate patterns %d and %d (%.1fnm apart)\n",
                classes.sp[static_cast<std::size_t>(e.u)],
                classes.sp[static_cast<std::size_t>(e.v)], e.weight);
  std::printf("Covering arrays: Arrs1 %zu rows (3-wise), Arrs2 %zu rows "
              "(2-wise) -> %zu candidates\n",
              generated.arrs1_rows, generated.arrs2_rows,
              generated.candidates.size());

  // Raw-print quality of every candidate (what selection has to choose
  // between, before any mask optimization).
  litho::LithoConfig litho_cfg;
  litho_cfg.grid_size = 64;
  litho_cfg.pixel_nm = 16.0;
  const litho::LithoSimulator simulator(litho_cfg);
  core::RawPrintPredictor predictor(simulator);
  std::printf("\n%-5s %-24s %s\n", "#", "assignment", "raw-print score");
  for (std::size_t i = 0; i < generated.candidates.size(); ++i) {
    const auto& candidate = generated.candidates[i];
    std::printf("%-5zu ", i);
    for (int mask : candidate) std::printf("%d", mask);
    std::printf("%*s %.1f\n",
                static_cast<int>(24 - candidate.size()), "",
                predictor.score(layout, candidate));
  }

  // Dump the best candidate's grayscale CNN image.
  layout::write_pgm(
      layout::decomposition_image(layout, generated.candidates[0], 224),
      "decomposition_image.pgm");
  std::printf("\nWrote decomposition_image.pgm (224x224 CNN input "
              "encoding)\n");
  return 0;
}
