// Quickstart: run the complete LDMO pipeline on one synthetic layout.
//
//   1. generate a NanGate-like contact layout,
//   2. generate decomposition candidates (MST + n-wise),
//   3. rank them with a printability predictor,
//   4. ILT-optimize the best candidate with violation fallback,
//   5. report printability and dump the masks as PGM images.
//
// This example uses the RawPrintPredictor so it runs in seconds without
// training; examples/train_predictor.cpp shows the full CNN path.
#include <cstdio>

#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "layout/io.h"
#include "layout/raster.h"

int main() {
  using namespace ldmo;

  // A lithography model sized for quick runs (64 px over a 1024nm clip).
  litho::LithoConfig litho_cfg;
  litho_cfg.grid_size = 64;
  litho_cfg.pixel_nm = 16.0;
  const litho::LithoSimulator simulator(litho_cfg);

  // One synthetic standard-cell-like contact layout.
  layout::LayoutGenerator generator;
  const layout::Layout layout = generator.generate(/*seed=*/42);
  std::printf("Layout %s: %d contact patterns in a %lldnm clip\n",
              layout.name.c_str(), layout.pattern_count(),
              static_cast<long long>(layout.clip.width()));

  // The LDMO flow (Fig. 2 of the paper) with a simulation-based predictor.
  core::RawPrintPredictor predictor(simulator);
  core::LdmoFlow flow(simulator, predictor, {});
  const core::LdmoResult result = flow.run(layout);

  std::printf("Candidates generated: %d, ILT attempts: %d\n",
              result.candidates_generated, result.candidates_tried);
  std::printf("Chosen decomposition:");
  for (int mask : result.chosen) std::printf(" %d", mask);
  std::printf("\n");
  std::printf("Final printability: %d EPE violations, %d print violations, "
              "L2 = %.1f (score %.1f)\n",
              result.ilt.report.epe.violation_count,
              result.ilt.report.violations.total(), result.ilt.report.l2,
              result.ilt.report.score());
  std::printf("Runtime: %.2fs (generate %.2fs, predict %.2fs, ILT %.2fs)\n",
              result.total_seconds, result.timing.get("generate"),
              result.timing.get("predict"), result.timing.get("ilt"));

  layout::write_pgm(layout::rasterize_target(layout, simulator.grid_size()),
                    "quickstart_target.pgm");
  layout::write_pgm(result.ilt.mask1, "quickstart_mask1.pgm");
  layout::write_pgm(result.ilt.mask2, "quickstart_mask2.pgm");
  layout::write_pgm(result.ilt.response, "quickstart_print.pgm");
  std::printf("Wrote quickstart_{target,mask1,mask2,print}.pgm\n");
  return 0;
}
