// Triple-patterning extension demo: a conflict triangle (three contacts
// with pairwise spacing below nmin) cannot be decomposed onto two masks —
// some pair always shares a mask and prints badly — but splits cleanly
// onto three.
#include <cstdio>

#include "layout/io.h"
#include "layout/layout.h"
#include "mpl/tpl.h"
#include "opc/mpl_ilt.h"

int main() {
  using namespace ldmo;

  litho::LithoConfig litho_cfg;
  litho_cfg.grid_size = 64;
  litho_cfg.pixel_nm = 16.0;
  const litho::LithoSimulator simulator(litho_cfg);

  // The canonical DPL-infeasible instance: a mutual-conflict triangle.
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({410, 400}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({545, 400}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({478, 518}, 65, 65));
  std::printf("Conflict triangle: 3 contacts, all pairwise gaps < 80nm\n\n");

  // TPL candidate generation (generalized Algorithm 1).
  const mpl::TplGenerationResult generated =
      mpl::generate_tpl_decompositions(l);
  std::printf("TPL generation: base coloring has %d residual conflicts, "
              "%zu canonical candidate(s)\n",
              generated.sp_coloring.conflict_count,
              generated.candidates.size());

  // Compare: best-possible DPL assignment vs the TPL assignment.
  opc::IltConfig ilt_cfg;
  ilt_cfg.max_iterations = 20;
  ilt_cfg.theta_m_anneal = 1.12;
  opc::MplIltEngine dpl(simulator, 2, ilt_cfg);
  opc::MplIltEngine tpl(simulator, 3, ilt_cfg);

  const opc::MplIltResult dpl_result = dpl.optimize(l, {0, 1, 1});
  const opc::MplIltResult tpl_result =
      tpl.optimize(l, generated.candidates[0]);

  std::printf("\n%-22s | %8s | %10s | %8s\n", "flow", "EPE#",
              "violations", "L2");
  std::printf("%-22s | %8d | %10d | %8.1f\n", "double patterning",
              dpl_result.report.epe.violation_count,
              dpl_result.report.violations.total(), dpl_result.report.l2);
  std::printf("%-22s | %8d | %10d | %8.1f\n", "triple patterning",
              tpl_result.report.epe.violation_count,
              tpl_result.report.violations.total(), tpl_result.report.l2);

  for (std::size_t m = 0; m < tpl_result.masks.size(); ++m)
    layout::write_pgm(tpl_result.masks[m],
                      "tpl_mask" + std::to_string(m + 1) + ".pgm");
  layout::write_pgm(tpl_result.response, "tpl_print.pgm");
  std::printf("\nWrote tpl_mask{1,2,3}.pgm and tpl_print.pgm\n");
  return 0;
}
